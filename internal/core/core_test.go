package core

import (
	"errors"
	"sync"
	"testing"
)

func TestCASObjZeroValue(t *testing.T) {
	var o CASObj[int]
	if got := o.Load(); got != 0 {
		t.Fatalf("zero CASObj Load = %d, want 0", got)
	}
	if !o.CAS(0, 42) {
		t.Fatal("CAS(0,42) on zero object failed")
	}
	if got := o.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestCASObjPlainOps(t *testing.T) {
	o := NewCASObj[int](7)
	if got := o.Load(); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
	o.Store(9)
	if got := o.Load(); got != 9 {
		t.Fatalf("Load after Store = %d, want 9", got)
	}
	if o.CAS(7, 1) {
		t.Fatal("CAS with wrong expected succeeded")
	}
	if !o.CAS(9, 1) {
		t.Fatal("CAS with right expected failed")
	}
}

func TestCASObjPointerValues(t *testing.T) {
	type node struct{ k int }
	a, b := &node{1}, &node{2}
	o := NewCASObj[*node](a)
	if !o.CAS(a, b) {
		t.Fatal("pointer CAS failed")
	}
	if o.Load() != b {
		t.Fatal("pointer Load mismatch")
	}
}

func TestTxCommitSingleWrite(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](1)
	err := tx.Run(func() error {
		if !o.NbtcCAS(tx, 1, 2, true, true) {
			t.Fatal("nbtcCAS failed with no contention")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := o.Load(); got != 2 {
		t.Fatalf("after commit Load = %d, want 2", got)
	}
}

func TestTxAbortRestoresOldValue(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](1)
	err := tx.Run(func() error {
		if !o.NbtcCAS(tx, 1, 2, true, true) {
			t.Fatal("nbtcCAS failed")
		}
		tx.Abort()
		return nil
	})
	if !errors.Is(err, ErrTxAborted) {
		t.Fatalf("Run = %v, want ErrTxAborted", err)
	}
	if got := o.Load(); got != 1 {
		t.Fatalf("after abort Load = %d, want 1", got)
	}
}

func TestTxMultiWordAtomicity(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	a := NewCASObj[int](10)
	b := NewCASObj[int](20)
	err := tx.Run(func() error {
		tx.OpStart()
		if !a.NbtcCAS(tx, 10, 5, true, true) {
			t.Fatal("CAS a failed")
		}
		tx.OpStart()
		if !b.NbtcCAS(tx, 20, 25, true, true) {
			t.Fatal("CAS b failed")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Load() != 5 || b.Load() != 25 {
		t.Fatalf("got (%d,%d), want (5,25)", a.Load(), b.Load())
	}
}

func TestTxReadOwnWrite(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](3)
	err := tx.Run(func() error {
		tx.OpStart()
		if !o.NbtcCAS(tx, 3, 4, true, true) {
			t.Fatal("CAS failed")
		}
		tx.OpStart()
		v, w := o.NbtcLoad(tx)
		if v != 4 {
			t.Fatalf("NbtcLoad of own write = %d, want speculative 4", v)
		}
		tx.AddToReadSet(w)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if o.Load() != 4 {
		t.Fatalf("Load = %d, want 4", o.Load())
	}
}

func TestTxCASOwnWriteTwice(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](3)
	err := tx.Run(func() error {
		tx.OpStart()
		if !o.NbtcCAS(tx, 3, 4, true, true) {
			t.Fatal("first CAS failed")
		}
		tx.OpStart()
		if o.NbtcCAS(tx, 3, 5, true, true) {
			t.Fatal("CAS with stale expected on own write succeeded")
		}
		if !o.NbtcCAS(tx, 4, 5, true, true) {
			t.Fatal("second CAS against speculative value failed")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if o.Load() != 5 {
		t.Fatalf("Load = %d, want 5", o.Load())
	}
}

func TestTxCASOwnWriteTwiceAbortRestoresOriginal(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](3)
	_ = tx.Run(func() error {
		if !o.NbtcCAS(tx, 3, 4, true, true) || !o.NbtcCAS(tx, 4, 5, true, true) {
			t.Fatal("CASes failed")
		}
		tx.Abort()
		return nil
	})
	if o.Load() != 3 {
		t.Fatalf("Load after abort = %d, want original 3", o.Load())
	}
}

func TestReadThenWriteSameSlotCommits(t *testing.T) {
	// The paper's Fig. 3 transfer performs get(a2) (records a read on a
	// slot) then put(a2) (installs a descriptor over the same slot); commit
	// validation must accept the displaced cell.
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](3)
	err := tx.Run(func() error {
		tx.OpStart()
		v, w := o.NbtcLoad(tx)
		tx.AddToReadSet(w)
		tx.OpStart()
		if !o.NbtcCAS(tx, v, v+1, true, true) {
			t.Fatal("CAS failed")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v (read-then-write-same-slot must commit)", err)
	}
	if o.Load() != 4 {
		t.Fatalf("Load = %d, want 4", o.Load())
	}
}

func TestReadValidationFailureAborts(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](3)
	err := tx.Run(func() error {
		_, w := o.NbtcLoad(tx)
		tx.AddToReadSet(w)
		// A non-transactional writer invalidates the read before commit.
		o.Store(99)
		return nil
	})
	if !errors.Is(err, ErrTxAborted) {
		t.Fatalf("Run = %v, want ErrTxAborted from failed validation", err)
	}
}

func TestValidateReadsMidTx(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](3)
	_ = tx.Run(func() error {
		_, w := o.NbtcLoad(tx)
		tx.AddToReadSet(w)
		if !tx.ValidateReads() {
			t.Fatal("ValidateReads false with no interference")
		}
		o.Store(99)
		if tx.ValidateReads() {
			t.Fatal("ValidateReads true after invalidation")
		}
		tx.Abort()
		return nil
	})
}

func TestRunUserError(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](1)
	myErr := errors.New("business rule")
	err := tx.Run(func() error {
		if !o.NbtcCAS(tx, 1, 2, true, true) {
			t.Fatal("CAS failed")
		}
		return myErr
	})
	if !errors.Is(err, myErr) {
		t.Fatalf("Run = %v, want user error", err)
	}
	if o.Load() != 1 {
		t.Fatalf("user-error return must abort; Load = %d, want 1", o.Load())
	}
}

func TestRunRepanicsForeignPanics(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](1)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("foreign panic swallowed")
		}
		if o.Load() != 1 {
			t.Fatalf("tx not rolled back on foreign panic; Load = %d", o.Load())
		}
		if tx.InTx() {
			t.Fatal("tx still open after foreign panic")
		}
	}()
	_ = tx.Run(func() error {
		_ = o.NbtcCAS(tx, 1, 2, true, true)
		panic("boom")
	})
}

func TestNonTransactionalElision(t *testing.T) {
	o := NewCASObj[int](1)
	var tx *Tx // nil Tx elides instrumentation
	if !o.NbtcCAS(tx, 1, 2, true, true) {
		t.Fatal("nil-tx NbtcCAS failed")
	}
	if o.Load() != 2 {
		t.Fatal("nil-tx NbtcCAS did not take effect immediately")
	}
	v, _ := o.NbtcLoad(tx)
	if v != 2 {
		t.Fatalf("nil-tx NbtcLoad = %d, want 2", v)
	}
	ran := false
	tx.OpStart() // must not panic on nil receiver
	mgrTx := NewTxManager().Register()
	mgrTx.Defer(func() { ran = true })
	if !ran {
		t.Fatal("Defer outside tx must run immediately")
	}
}

func TestDeferRunsOnlyOnCommit(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](1)
	ran := false
	_ = tx.Run(func() error {
		_ = o.NbtcCAS(tx, 1, 2, true, true)
		tx.Defer(func() { ran = true })
		tx.Abort()
		return nil
	})
	if ran {
		t.Fatal("cleanup ran on abort")
	}
	err := tx.Run(func() error {
		_ = o.NbtcCAS(tx, 1, 2, true, true)
		tx.Defer(func() { ran = true })
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("cleanup did not run on commit")
	}
}

func TestOnAbortUndoRunsOnlyOnAbort(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	undone := false
	err := tx.Run(func() error {
		tx.OnAbortUndo(func() { undone = true })
		return nil
	})
	if err != nil || undone {
		t.Fatalf("commit path: err=%v undone=%v", err, undone)
	}
	_ = tx.Run(func() error {
		tx.OnAbortUndo(func() { undone = true })
		tx.Abort()
		return nil
	})
	if !undone {
		t.Fatal("abort compensation did not run")
	}
}

func TestEagerContentionManagementAbortsInPrep(t *testing.T) {
	mgr := NewTxManager()
	t1 := mgr.Register()
	t2 := mgr.Register()
	o := NewCASObj[int](0)

	t1.Begin()
	if !o.NbtcCAS(t1, 0, 1, true, true) {
		t.Fatal("t1 install failed")
	}
	// t2 encounters t1's InPrep descriptor; eager contention management
	// aborts t1 and proceeds.
	err := t2.Run(func() error {
		if !o.NbtcCAS(t2, 0, 2, true, true) {
			t.Fatal("t2 CAS failed after finalizing t1")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("t2 Run: %v", err)
	}
	if got := o.Load(); got != 2 {
		t.Fatalf("Load = %d, want 2 (t1 aborted, t2 committed)", got)
	}
	if t1.End() == nil {
		t.Fatal("t1 End should report abort")
	}
	st := mgr.Stats()
	if st.AbortsByOthers == 0 {
		t.Fatal("expected an eager contention-management abort to be counted")
	}
}

func TestHelperCommitsInProgTx(t *testing.T) {
	// Simulate the window where the owner has set InProg but not yet
	// performed the commit CAS: a conflicting thread must help commit, not
	// abort.
	mgr := NewTxManager()
	t1 := mgr.Register()
	o := NewCASObj[int](0)

	t1.Begin()
	if !o.NbtcCAS(t1, 0, 1, true, true) {
		t.Fatal("t1 install failed")
	}
	d := t1.desc
	d.reads.Store(&publishedReads{serial: t1.serial, entries: t1.reads})
	if !d.stsCAS(packStatus(t1.serial, StatusInPrep), StatusInPrep, StatusInProg) {
		t.Fatal("setReady failed")
	}
	// t2 finds the InProg descriptor and must push it to Committed.
	if got := o.Load(); got != 1 {
		t.Fatalf("helper resolved to %d, want committed value 1", got)
	}
	if statusOf(d.status.Load()) != StatusCommitted {
		t.Fatal("descriptor not Committed by helper")
	}
	// Owner completes; End must observe the helped commit as success.
	if err := t1.End(); err != nil {
		t.Fatalf("owner End after helped commit: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](0)
	for i := 0; i < 5; i++ {
		_ = tx.Run(func() error {
			_ = o.NbtcCAS(tx, o.Load(), i, true, true)
			if i%2 == 1 {
				tx.Abort()
			}
			return nil
		})
	}
	st := mgr.Stats()
	if st.Begins != 5 {
		t.Fatalf("Begins = %d, want 5", st.Begins)
	}
	if st.Commits != 3 || st.Aborts != 2 {
		t.Fatalf("Commits,Aborts = %d,%d want 3,2", st.Commits, st.Aborts)
	}
}

func TestBeginInsideTxPanics(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	tx.Begin()
	defer tx.AbortNow()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Begin did not panic")
		}
	}()
	tx.Begin()
}

func TestConcurrentPlainCAS(t *testing.T) {
	// The plain CAS path must be linearizable on its own: N goroutines each
	// increment via CAS loops; total must be exact.
	o := NewCASObj[int](0)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for {
					v := o.Load()
					if o.CAS(v, v+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := o.Load(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
}
