package core

import (
	"runtime"
	"time"
)

// This file is the contention-adaptive retry backoff. The previous design
// was a fixed ladder — backoffYields plain Gosched calls, then exponential
// jittered sleeps up to backoffMax — which treats a transient conflict on
// an otherwise quiet shard the same as a sustained hot-key pileup. The
// adaptive manager keeps the ladder's shape (and its hard bounds, pinned
// by backoff_test.go) but steers two of its knobs per Tx:
//
//   - the yield count: under a low abort-rate EWMA conflicts are transient
//     and the conflict window is shorter than any timer sleep, so the
//     ladder yields longer before sleeping; under a high EWMA spinning
//     only amplifies the pileup, so it sleeps almost immediately;
//   - the jitter window cap: a quiet shard caps sleeps well under
//     backoffMax (a displaced transaction should retry quickly), while a
//     hot conflict widens the window to the full backoffMax so competing
//     workers desynchronize.
//
// Hot-conflict detection feeds the second knob: a retry loop that keeps
// aborting while the shard's AbortsByOthers counter advances is being
// displaced by other workers' eager contention management — the signature
// of everyone hammering one key — rather than failing validation against
// background churn.

// backoffYields is the cold-state number of plain runtime.Gosched retries
// before the ladder starts sleeping; backoffMax is the hard cap on the
// jitter window in every contention regime.
const (
	backoffYields   = 4
	backoffMax      = 128 * time.Microsecond
	backoffMaxShift = 7 // 1us << 7 == backoffMax
)

// EWMA fixed point: ewmaOne is 1.0; each completed attempt folds its
// outcome (abort = 1, commit = 0) in with weight 1/2^ewmaShift.
const (
	ewmaOne   = 1 << 16
	ewmaShift = 4
)

// hotStreakLen is how many consecutive aborts of one retry loop, each
// accompanied by fresh eager-abort traffic on this shard, flag a hot
// conflict.
const hotStreakLen = 3

// backoffYield and backoffSleep are seams for the ladder-contract tests
// (backoff_test.go), which swap them to observe the yield/sleep schedule
// without timing heuristics. Production code never reassigns them.
var (
	backoffYield = runtime.Gosched
	backoffSleep = time.Sleep
)

// contention is a Tx's adaptive backoff state. It is owner-only: the one
// cross-thread signal it consumes (the shard's AbortsByOthers counter,
// written by displacing threads) is read through the shard's atomic.
type contention struct {
	ewma    uint32 // abort-rate EWMA, fixed point in [0, ewmaOne]
	streak  uint32 // consecutive aborts in the current retry loop
	lastABO uint64 // shard AbortsByOthers at the last noted outcome
	hot     bool   // current retry loop looks like a hot-key pileup
}

// note folds one completed attempt into the EWMA and updates the
// hot-conflict detector. Called by RunRetry and RunGroup after every
// attempt, aborted or not.
func (c *contention) note(tx *Tx, aborted bool) {
	abo := tx.desc.shard.AbortsByOthers.Load()
	var sample uint32
	if aborted {
		sample = ewmaOne
		c.streak++
		c.hot = c.streak >= hotStreakLen && abo != c.lastABO
	} else {
		c.streak = 0
		c.hot = false
	}
	c.lastABO = abo
	delta := int32(sample) - int32(c.ewma)
	c.ewma = uint32(int32(c.ewma) + delta>>ewmaShift)
}

// yields is the number of plain Gosched retries before this loop's ladder
// starts sleeping.
func (c *contention) yields() int {
	switch {
	case c.hot || c.ewma >= ewmaOne/3:
		// Sustained conflict: every spin re-enters the fray and knocks
		// out somebody's InPrep window. Get off the processor fast.
		return 1
	case c.ewma < ewmaOne/16:
		// Conflicts are rare; the one we just hit is almost certainly
		// gone by the next yield.
		return 2 * backoffYields
	default:
		return backoffYields
	}
}

// windowLimit caps the jitter window for this loop's contention regime;
// never above backoffMax.
func (c *contention) windowLimit() time.Duration {
	switch {
	case c.hot || c.ewma >= ewmaOne/3:
		return backoffMax
	case c.ewma < ewmaOne/16:
		return backoffMax / 8
	default:
		return backoffMax / 2
	}
}

// backoff delays the attempt-th retry. Sleeps happen outside the Tx's SMR
// critical section: between attempts the previous transaction has settled
// and no cell reference survives into the next attempt, so this is a
// quiescent point — and a worker sleeping tens of microseconds while
// announcing an old epoch would otherwise stall reclamation for the whole
// domain exactly when contention (and displacement traffic) peaks.
func (tx *Tx) backoff(attempt int) {
	yields := tx.cm.yields()
	if attempt < yields {
		backoffYield()
		return
	}
	shift := attempt - yields
	if shift > backoffMaxShift {
		shift = backoffMaxShift
	}
	window := time.Microsecond << uint(shift)
	if lim := tx.cm.windowLimit(); window > lim {
		window = lim
	}
	pause := tx.pauser != nil && tx.pauser.Active()
	if pause {
		tx.pauser.Exit()
	}
	backoffSleep(time.Duration(tx.nextRand()%uint64(window)) + 1)
	if pause {
		tx.pauser.Enter()
	}
}

// nextRand steps the Tx's xorshift64* PRNG (Vigna 2016), seeded from the
// thread id on first use. Cheap, allocation-free, and private to the
// owning goroutine.
func (tx *Tx) nextRand() uint64 {
	x := tx.rngState
	if x == 0 {
		x = uint64(tx.desc.tid)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	}
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	tx.rngState = x
	return x * 0x2545F4914F6CDD1D
}
