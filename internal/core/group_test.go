package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGroupCommitMergesMembers checks the accounting of a clean merged
// group: n members with disjoint write sets commit as one physical
// transaction, counted once in Commits and expanded by
// GroupCommits/GroupedTxns.
func TestGroupCommitMergesMembers(t *testing.T) {
	const n = 4
	mgr := NewTxManager()
	tx := mgr.Register()
	objs := make([]*CASObj[int], n)
	for i := range objs {
		objs[i] = NewCASObj[int](0)
	}
	err := tx.RunGroup(n, func(i int) error {
		v, w := objs[i].NbtcLoad(tx)
		tx.AddToReadSet(w)
		if !objs[i].NbtcCAS(tx, v, v+10+i, true, true) {
			tx.Abort()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunGroup: %v", err)
	}
	for i, o := range objs {
		if got := o.Load(); got != 10+i {
			t.Fatalf("objs[%d] = %d, want %d", i, got, 10+i)
		}
	}
	st := mgr.Stats()
	if st.GroupCommits != 1 || st.GroupedTxns != n || st.Commits != 1 {
		t.Fatalf("GroupCommits,GroupedTxns,Commits = %d,%d,%d, want 1,%d,1",
			st.GroupCommits, st.GroupedTxns, st.Commits, n)
	}
	if got := st.LogicalCommits(); got != n {
		t.Fatalf("LogicalCommits = %d, want %d", got, n)
	}
}

// TestGroupCommitDisabled checks the ablation switch: with
// TxManager.DisableGroupCommit the same group runs every member as its
// own transaction and no merge is counted.
func TestGroupCommitDisabled(t *testing.T) {
	const n = 4
	mgr := NewTxManager()
	mgr.DisableGroupCommit()
	tx := mgr.Register()
	o := NewCASObj[int](0)
	err := tx.RunGroup(n, func(i int) error {
		v, w := o.NbtcLoad(tx)
		tx.AddToReadSet(w)
		if !o.NbtcCAS(tx, v, v+1, true, true) {
			tx.Abort()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunGroup: %v", err)
	}
	st := mgr.Stats()
	if st.GroupCommits != 0 || st.GroupedTxns != 0 {
		t.Fatalf("GroupCommits,GroupedTxns = %d,%d, want 0,0 with group commit off",
			st.GroupCommits, st.GroupedTxns)
	}
	if st.Commits != n {
		t.Fatalf("Commits = %d, want %d individual commits", st.Commits, n)
	}
	if got := st.LogicalCommits(); got != n {
		t.Fatalf("LogicalCommits = %d, want %d", got, n)
	}
	if got := o.Load(); got != n {
		t.Fatalf("o = %d, want %d", got, n)
	}
}

// TestGroupIntraGroupConflictsSequential checks merged-group semantics
// when members are NOT disjoint: members hitting the same key must behave
// exactly as if committed individually in member order — each member
// reads its predecessors' speculative effects. The result is compared
// against the same members run with group commit ablated.
func TestGroupIntraGroupConflictsSequential(t *testing.T) {
	const n = 8
	run := func(mgr *TxManager) int {
		tx := mgr.Register()
		o := NewCASObj[int](1)
		err := tx.RunGroup(n, func(i int) error {
			v, w := o.NbtcLoad(tx)
			tx.AddToReadSet(w)
			if !o.NbtcCAS(tx, v, v*2+i, true, true) {
				tx.Abort()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("RunGroup: %v", err)
		}
		return o.Load()
	}
	grouped := NewTxManager()
	individual := NewTxManager()
	individual.DisableGroupCommit()
	g, ind := run(grouped), run(individual)
	if g != ind {
		t.Fatalf("merged group result %d != individual-commit result %d", g, ind)
	}
	if st := grouped.Stats(); st.GroupCommits != 1 || st.GroupedTxns != n {
		t.Fatalf("GroupCommits,GroupedTxns = %d,%d, want 1,%d", st.GroupCommits, st.GroupedTxns, n)
	}
}

// TestGroupMemberErrorFallsBackToIndividual checks that a member failing
// of its own accord poisons only itself: the merged attempt rolls back,
// the individual fallback commits every other member, and the member's
// error surfaces from RunGroup.
func TestGroupMemberErrorFallsBackToIndividual(t *testing.T) {
	const n = 4
	errBad := errors.New("member 2 declines")
	mgr := NewTxManager()
	tx := mgr.Register()
	objs := make([]*CASObj[int], n)
	for i := range objs {
		objs[i] = NewCASObj[int](0)
	}
	err := tx.RunGroup(n, func(i int) error {
		if i == 2 {
			return errBad
		}
		v, w := objs[i].NbtcLoad(tx)
		tx.AddToReadSet(w)
		if !objs[i].NbtcCAS(tx, v, 7, true, true) {
			tx.Abort()
		}
		return nil
	})
	if !errors.Is(err, errBad) {
		t.Fatalf("RunGroup error = %v, want %v", err, errBad)
	}
	for i, o := range objs {
		want := 7
		if i == 2 {
			want = 0
		}
		if got := o.Load(); got != want {
			t.Fatalf("objs[%d] = %d, want %d", i, got, want)
		}
	}
	if st := mgr.Stats(); st.GroupCommits != 0 {
		t.Fatalf("GroupCommits = %d, want 0 (merged attempt must not commit)", st.GroupCommits)
	}
}

// TestGroupCommitSerializable is the group-commit analogue of the torn-
// transfer fast-path test, and the -race stress for merged commits racing
// helper aborts: writer workers commit GROUPS of transfer members (each
// member moves one unit between two slots, preserving their sum, through
// the general two-write protocol where helpers can reach and eagerly
// abort the merged descriptor), while reader workers commit read-only
// snapshots of both slots. Every committed read must see the invariant
// sum — whether the transfers around it merged or fell back — and the
// final state must balance.
func TestGroupCommitSerializable(t *testing.T) {
	const (
		writers   = 3
		readers   = 2
		total     = 1 << 10
		rounds    = 4000
		groupSize = 4
	)
	mgr := NewTxManager()
	a, b := NewCASObj[int](total), NewCASObj[int](0)
	var wg sync.WaitGroup
	var torn atomic.Int64
	transfer := func(tx *Tx) error {
		av, aw := a.NbtcLoad(tx)
		tx.AddToReadSet(aw)
		bv, bw := b.NbtcLoad(tx)
		tx.AddToReadSet(bw)
		d := 1
		if av == 0 {
			d = -1
		}
		if !a.NbtcCAS(tx, av, av-d, false, true) {
			tx.Abort()
		}
		if !b.NbtcCAS(tx, bv, bv+d, true, false) {
			tx.Abort()
		}
		return nil
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := mgr.Register()
			for i := 0; i < rounds; i++ {
				if err := tx.RunGroup(groupSize, func(int) error { return transfer(tx) }); err != nil {
					t.Errorf("transfer group: %v", err)
					return
				}
			}
		}()
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := mgr.Register()
			for i := 0; i < rounds*2; i++ {
				var av, bv int
				err := tx.Run(func() error {
					v, w := a.NbtcLoad(tx)
					tx.AddToReadSet(w)
					av = v
					v, w = b.NbtcLoad(tx)
					tx.AddToReadSet(w)
					bv = v
					return nil
				})
				if err == nil && av+bv != total {
					torn.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d committed reads observed a torn grouped transfer", n)
	}
	if got := a.Load() + b.Load(); got != total {
		t.Fatalf("final sum = %d, want %d", got, total)
	}
	st := mgr.Stats()
	if st.GroupCommits == 0 {
		t.Fatal("no group ever merged under contention")
	}
	if st.LogicalCommits() < writers*rounds*groupSize {
		t.Fatalf("LogicalCommits = %d, want >= %d transfer members",
			st.LogicalCommits(), writers*rounds*groupSize)
	}
}

// TestGroupEmptyAndSingleton checks the degenerate group sizes: zero
// members is a no-op, and a singleton group is an ordinary transaction
// with no merge counted.
func TestGroupEmptyAndSingleton(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	if err := tx.RunGroup(0, func(int) error { t.Fatal("member ran"); return nil }); err != nil {
		t.Fatalf("empty group: %v", err)
	}
	o := NewCASObj[int](0)
	err := tx.RunGroup(1, func(int) error {
		v, w := o.NbtcLoad(tx)
		tx.AddToReadSet(w)
		if !o.NbtcCAS(tx, v, v+1, true, true) {
			tx.Abort()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("singleton group: %v", err)
	}
	st := mgr.Stats()
	if st.GroupCommits != 0 || st.GroupedTxns != 0 || st.Commits != 1 {
		t.Fatalf("GroupCommits,GroupedTxns,Commits = %d,%d,%d, want 0,0,1",
			st.GroupCommits, st.GroupedTxns, st.Commits)
	}
}
