package core

import "sync/atomic"

// Transaction status codes, stored in the low two bits of a descriptor's
// status word. The remaining 62 bits hold the descriptor's serial number,
// exactly as in Figure 4 of the paper (we fold the thread id into the serial
// space since descriptors are per-Tx and never migrate).
const (
	// StatusInPrep is the initial state: the transaction is installing
	// descriptor cells and may still grow its read and write sets.
	StatusInPrep = uint64(0)
	// StatusInProg means the owner has called End and the transaction is
	// ready to commit pending read-set validation; helpers may push it to
	// Committed or Aborted.
	StatusInProg = uint64(1)
	// StatusCommitted is terminal: installed cells resolve to their new
	// values.
	StatusCommitted = uint64(2)
	// StatusAborted is terminal: installed cells resolve to their displaced
	// old values.
	StatusAborted = uint64(3)
)

const statusMask = uint64(3)

func packStatus(serial, status uint64) uint64 { return serial<<2 | status }
func serialOf(word uint64) uint64             { return word >> 2 }
func statusOf(word uint64) uint64             { return word & statusMask }

// ReadWitness is the evidence returned by CASObj.NbtcLoad that lets the
// transaction validate, at commit time, that the loaded value still governs
// the slot. It corresponds to the {addr, val, cnt} read-set entries of the
// paper; here validity is pointer identity of the immutable cell (or
// identity of the displaced cell when the transaction has since installed
// its own descriptor over the same slot, which the paper's transfer example
// performs via get(a2) followed by put(a2)).
//
// A ReadWitness is opaque; pass it to Tx.AddToReadSet from the linearizing
// load of a read-only operation.
type ReadWitness interface {
	validFor(d *Desc, serial uint64) bool
}

// writeCell is an installed descriptor cell recorded in the owner's write
// set so the owner can uninstall everything on commit or abort. Helpers
// never touch the write set: the cell itself carries enough state
// (slot back-pointer, speculative value, displaced cell) for a helper to
// uninstall the one cell it encountered.
type writeCell interface {
	uninstall(committed bool)
}

// alwaysValid is the witness returned when a transaction loads a slot that
// currently holds its own descriptor: no validation is needed because the
// installed descriptor itself guards the slot through commit.
type alwaysValid struct{}

func (alwaysValid) validFor(*Desc, uint64) bool { return true }

// checkWitness adapts an arbitrary validation predicate into the read set.
// txMontage uses this to fold the persistence-epoch check into MCNS commit.
type checkWitness struct{ f func() bool }

func (w checkWitness) validFor(*Desc, uint64) bool { return w.f() }

// publishedReads is the owner's read set as published (with a release
// store) immediately before the InPrep→InProg transition, so that helpers
// observing InProg can validate on the owner's behalf. The slice is frozen:
// the owner allocates a fresh backing array every transaction and never
// mutates a published one.
type publishedReads struct {
	serial  uint64
	entries []ReadWitness
}

// Desc is a transaction descriptor: the target of the pointers installed in
// CASObjs by critical CASes, and the carrier of the status word on which
// MCNS linearizes. One Desc belongs to exactly one Tx and is reused across
// that Tx's transactions, distinguished by serial number.
type Desc struct {
	status   atomic.Uint64 // serial<<2 | status
	reads    atomic.Pointer[publishedReads]
	tid      int
	mgr      *TxManager
	shard    *StatShard // owner's statistics shard
	_padding [4]uint64  // keep descriptors on distinct cache lines
}

// stsCAS attempts the expected→desired status transition carrying the full
// status word (serial included) so a helper can never affect a later
// transaction that reuses this descriptor.
func (d *Desc) stsCAS(word, expected, desired uint64) bool {
	base := word &^ statusMask
	return d.status.CompareAndSwap(base|expected, base|desired)
}

// validatePublished re-checks the published read set for the given serial.
// It returns false both on genuine invalidation and when the publication is
// stale (the owner has moved on), in which case the caller's subsequent
// status reload bails out on the serial mismatch.
func (d *Desc) validatePublished(serial uint64) bool {
	rp := d.reads.Load()
	if rp == nil || rp.serial != serial {
		return false
	}
	for _, w := range rp.entries {
		if !w.validFor(d, serial) {
			return false
		}
	}
	return true
}

// finalize drives the descriptor, observed with status word st carrying
// serial, to a terminal state: abort if InPrep (eager contention
// management), help validate and commit if InProg. It returns the terminal
// status word for that serial, or (0, false) if the owner has already moved
// to a later serial (in which case every cell of the old serial has been
// uninstalled and the caller's pending CAS will fail harmlessly).
func (d *Desc) finalize(st, serial uint64) (uint64, bool) {
	if serialOf(st) != serial {
		return 0, false
	}
	if statusOf(st) == StatusInPrep {
		if d.stsCAS(st, StatusInPrep, StatusAborted) {
			d.shard.AbortsByOthers.Add(1)
		}
		st = d.status.Load()
		if serialOf(st) != serial {
			return 0, false
		}
	}
	if statusOf(st) == StatusInProg {
		if d.validatePublished(serial) {
			d.stsCAS(st, StatusInProg, StatusCommitted)
		} else {
			d.stsCAS(st, StatusInProg, StatusAborted)
		}
		st = d.status.Load()
		if serialOf(st) != serial {
			return 0, false
		}
	}
	return st, true
}
