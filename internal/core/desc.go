package core

import "sync/atomic"

// Transaction status codes, stored in the low two bits of a descriptor's
// status word. The remaining 62 bits hold the descriptor's serial number,
// exactly as in Figure 4 of the paper (we fold the thread id into the serial
// space since descriptors are per-Tx and never migrate).
const (
	// StatusInPrep is the initial state: the transaction is installing
	// descriptor cells and may still grow its read and write sets.
	StatusInPrep = uint64(0)
	// StatusInProg means the owner has called End and the transaction is
	// ready to commit pending read-set validation; helpers may push it to
	// Committed or Aborted.
	StatusInProg = uint64(1)
	// StatusCommitted is terminal: installed cells resolve to their new
	// values.
	StatusCommitted = uint64(2)
	// StatusAborted is terminal: installed cells resolve to their displaced
	// old values.
	StatusAborted = uint64(3)
)

const statusMask = uint64(3)

func packStatus(serial, status uint64) uint64 { return serial<<2 | status }
func serialOf(word uint64) uint64             { return word >> 2 }
func statusOf(word uint64) uint64             { return word & statusMask }

// ReadWitness is the evidence returned by CASObj.NbtcLoad that lets the
// transaction validate, at commit time, that the loaded value still governs
// the slot. It corresponds to the {addr, val, cnt} read-set entries of the
// paper; here validity is pointer identity of the immutable cell (or
// identity of the displaced cell when the transaction has since installed
// its own descriptor over the same slot, which the paper's transfer example
// performs via get(a2) followed by put(a2)), combined with the cell's
// generation counter: when cells are recycled through a Tx arena
// (TxManager.EnablePooling), the generation captured at load time is the
// proof that the witnessed cell has not been reused since — a recycled cell
// at the same address carries a bumped generation and can never validate a
// stale read.
//
// ReadWitness is a small concrete struct rather than an interface so that
// the common path — appending to and scanning the read set — involves no
// interface boxing and only one indirect call per entry. The zero
// ReadWitness is always valid and is ignored by Tx.AddToReadSet.
//
// A ReadWitness is opaque; pass it to Tx.AddToReadSet from the linearizing
// load of a read-only operation.
type ReadWitness struct {
	c   witnessCell // witnessed cell; nil for predicate or always-valid
	gen uint64      // cell generation observed at load time
	chk func() bool // predicate witness (Tx.AddReadCheck); nil otherwise
}

// witnessCell is the one indirect call a cell-backed witness needs; it is
// implemented by *cell[T] for every T, and holding the pointer in the
// interface does not allocate.
type witnessCell interface {
	witnessValid(d *Desc, serial, gen uint64) bool
}

// isZero reports whether the witness carries no evidence (the witness of a
// speculative self-read, or an unset field).
func (w ReadWitness) isZero() bool { return w.c == nil && w.chk == nil }

// valid re-checks the witness for transaction (d, serial).
func (w ReadWitness) valid(d *Desc, serial uint64) bool {
	if w.c != nil {
		return w.c.witnessValid(d, serial, w.gen)
	}
	if w.chk != nil {
		return w.chk()
	}
	return true
}

// writeCell is an installed descriptor cell recorded in the owner's write
// set so the owner can uninstall everything on commit or abort. Helpers
// never touch the write set: the cell itself carries enough state
// (slot back-pointer, speculative value, displaced cell) for a helper to
// uninstall the one cell it encountered. The *Tx argument is the
// uninstalling thread's context (nil outside transactions): displaced cells
// are retired into its arena when pooling is on.
type writeCell interface {
	uninstall(tx *Tx, committed bool)
}

// publishedReads is the owner's read set as published (with a release
// store) immediately before the InPrep→InProg transition, so that helpers
// observing InProg can validate on the owner's behalf. The slice is frozen:
// the owner never mutates a published one. Under pooling the struct and its
// backing array are recycled through EBR — the previous publication is
// retired when the next one replaces it, so a slow helper still iterating
// the old array always sees intact (if stale) entries, and the serial check
// plus per-cell generation counters make stale validation harmless.
type publishedReads struct {
	serial  uint64
	entries []ReadWitness
}

// Desc is a transaction descriptor: the target of the pointers installed in
// CASObjs by critical CASes, and the carrier of the status word on which
// MCNS linearizes. One Desc belongs to exactly one Tx and is reused across
// that Tx's transactions, distinguished by serial number.
type Desc struct {
	status   atomic.Uint64 // serial<<2 | status
	reads    atomic.Pointer[publishedReads]
	tid      int
	mgr      *TxManager
	shard    *StatShard // owner's statistics shard
	_padding [4]uint64  // keep descriptors on distinct cache lines
}

// stsCAS attempts the expected→desired status transition carrying the full
// status word (serial included) so a helper can never affect a later
// transaction that reuses this descriptor.
func (d *Desc) stsCAS(word, expected, desired uint64) bool {
	base := word &^ statusMask
	return d.status.CompareAndSwap(base|expected, base|desired)
}

// validatePublished re-checks the published read set for the given serial.
// It returns false both on genuine invalidation and when the publication is
// stale (the owner has moved on), in which case the caller's subsequent
// status reload bails out on the serial mismatch.
func (d *Desc) validatePublished(serial uint64) bool {
	rp := d.reads.Load()
	if rp == nil || rp.serial != serial {
		return false
	}
	for _, w := range rp.entries {
		if !w.valid(d, serial) {
			return false
		}
	}
	return true
}

// finalize drives the descriptor, observed with status word st carrying
// serial, to a terminal state: abort if InPrep (eager contention
// management), help validate and commit if InProg. It returns the terminal
// status word for that serial, or (0, false) if the owner has already moved
// to a later serial (in which case every cell of the old serial has been
// uninstalled and the caller's pending CAS will fail harmlessly).
func (d *Desc) finalize(st, serial uint64) (uint64, bool) {
	if serialOf(st) != serial {
		return 0, false
	}
	if statusOf(st) == StatusInPrep {
		if d.stsCAS(st, StatusInPrep, StatusAborted) {
			d.shard.AbortsByOthers.Add(1)
		}
		st = d.status.Load()
		if serialOf(st) != serial {
			return 0, false
		}
	}
	if statusOf(st) == StatusInProg {
		if d.validatePublished(serial) {
			d.stsCAS(st, StatusInProg, StatusCommitted)
		} else {
			d.stsCAS(st, StatusInProg, StatusAborted)
		}
		st = d.status.Load()
		if serialOf(st) != serial {
			return 0, false
		}
	}
	return st, true
}
