package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// cell is the unit of state held by a CASObj. Cells are immutable after
// publication; every successful CAS installs a fresh cell, so pointer
// identity of a cell is evidence that a slot has not changed (the role
// played by the 64-bit counter in the paper's 128-bit CASObj).
//
// "Fresh" no longer has to mean "freshly heap-allocated": under pooling
// (TxManager.EnablePooling) displaced cells are retired through EBR into
// per-Tx arenas and reused after a grace period. Reuse would forge the
// pointer-identity argument — a recycled cell at the same address could
// validate a stale ReadWitness — so every reuse bumps the cell's generation
// counter, and witnesses capture (cell, generation) pairs. The EBR grace
// period guarantees no thread still *operates* on a retired cell; the
// generation counter additionally covers witnesses that outlive the grace
// period inside a stale published read set (see publishedReads).
//
// A cell with desc == nil is a value cell holding the slot's real value.
// A cell with desc != nil is a descriptor cell: a critical CAS of the
// transaction identified by (desc, serial) has been installed; val is the
// speculative new value and prev the displaced value cell. slot points back
// at the owning CASObj so that any thread holding the cell can uninstall it.
//
// gen and slot are atomic because they are the only fields a thread may
// read on a cell that has possibly been recycled (via a stale witness);
// every other field is read only on cells reached through a live slot,
// which the reader's EBR critical section keeps stable.
type cell[T comparable] struct {
	val    T
	desc   *Desc
	serial uint64
	prev   *cell[T]
	slot   atomic.Pointer[CASObj[T]]
	gen    atomic.Uint64
}

// witnessValid implements witnessCell: the slot still holds this cell (or a
// descriptor of the validating transaction that displaced it), and the cell
// has not been recycled since the witness was taken. The generation is
// checked first — a mismatch means the cell was reused and nothing else in
// it may be read — and re-checked after the slot load so that a concurrent
// recycle-and-reinstall into the same slot can never validate.
func (c *cell[T]) witnessValid(d *Desc, serial, gen uint64) bool {
	if c.gen.Load() != gen {
		return false
	}
	slot := c.slot.Load()
	if slot == nil {
		return false
	}
	cur := slot.state.Load()
	if cur == c {
		return c.gen.Load() == gen
	}
	// cur is freshly loaded from a live slot, so its plain fields are
	// stable for this (EBR-protected) reader.
	if cur != nil && cur.desc == d && cur.serial == serial && cur.prev == c {
		return c.gen.Load() == gen
	}
	return false
}

// witness captures this cell's identity and generation as read evidence.
func (c *cell[T]) witness() ReadWitness {
	return ReadWitness{c: c, gen: c.gen.Load()}
}

// helpFinalize gets a foreign descriptor out of the way, following the
// paper's tryFinalize (Fig. 6): load the status word first, then confirm
// the cell is still installed — which proves the loaded word's serial is
// this installation's serial — then drive the transaction to a terminal
// state and uninstall this one cell. tx is the helping thread's context
// (nil outside transactions), used to source and retire cells.
func (c *cell[T]) helpFinalize(tx *Tx) {
	d := c.desc
	st := d.status.Load()
	if c.slot.Load().state.Load() != c {
		return // already uninstalled; st may belong to a later serial
	}
	st, ok := d.finalize(st, c.serial)
	if !ok {
		return
	}
	c.uninstall(tx, statusOf(st) == StatusCommitted)
}

// uninstall replaces this installed descriptor cell with its outcome: a
// fresh value cell carrying the speculative value on commit, or the
// displaced cell on abort. Competing uninstalls (owner and helpers) race on
// the same expected cell; exactly one wins and the rest are no-ops. The
// winner owns retirement: the displaced descriptor cell, and on commit the
// original value cell it shadowed, go to the winner's arena limbo.
func (c *cell[T]) uninstall(tx *Tx, committed bool) {
	slot := c.slot.Load()
	if committed {
		nc := newCell(tx, slot)
		nc.val = c.val
		if slot.state.CompareAndSwap(c, nc) {
			retireCell(tx, c.prev)
			retireCell(tx, c)
		} else {
			freeCell(tx, nc) // lost the uninstall race; nc never published
		}
		return
	}
	if slot.state.CompareAndSwap(c, c.prev) {
		retireCell(tx, c)
	}
}

// CASObj is a transactional shared word: the augmented atomic object of the
// paper's Figure 1. It may be embedded directly in node structures; the
// zero value is ready to use and holds the zero value of T.
//
// T must be comparable; it is typically a pointer, or a small struct of a
// pointer and a mark bit for structures that tag their links.
type CASObj[T comparable] struct {
	state atomic.Pointer[cell[T]]
}

// NewCASObj returns a CASObj initialized to v.
func NewCASObj[T comparable](v T) *CASObj[T] {
	o := new(CASObj[T])
	o.Init(v)
	return o
}

// Init sets the initial value without synchronization. It must only be used
// before the object is shared (e.g., in constructors), like a plain store
// to a not-yet-published atomic.
func (o *CASObj[T]) Init(v T) {
	c := &cell[T]{val: v}
	c.slot.Store(o)
	o.state.Store(c)
}

// InitTx is Init with a transaction context: the initial cell is drawn from
// tx's arena when pooling is on. Like Init it must only be called while the
// object is private to the caller (a node under construction, or a node
// just popped from a pool whose grace period has passed). If a cell is
// already installed it is reinitialized in place with a bumped generation,
// so witnesses taken during the cell's previous life can never validate.
func (o *CASObj[T]) InitTx(tx *Tx, v T) {
	if c := o.state.Load(); c != nil {
		c.gen.Add(1)
		c.val = v
		c.desc = nil
		c.serial = 0
		c.prev = nil
		c.slot.Store(o)
		return
	}
	nc := newCell(tx, o)
	nc.val = v
	o.state.Store(nc)
}

// loadCell returns the current cell, lazily installing a zero-value cell in
// a zero-valued CASObj.
func (o *CASObj[T]) loadCell() *cell[T] {
	c := o.state.Load()
	if c != nil {
		return c
	}
	nc := &cell[T]{}
	nc.slot.Store(o)
	if o.state.CompareAndSwap(nil, nc) {
		return nc
	}
	return o.state.Load()
}

// spinYield yields the processor every spinYieldEvery iterations of a help
// loop. The loops below retry until a foreign descriptor is out of the way;
// that normally takes one or two rounds, but on an oversubscribed box the
// thread that must make progress (the descriptor's owner, or another
// helper) may not be scheduled at all — and a spinning GOMAXPROCS-pinned
// helper occupying its P is exactly what keeps it unscheduled. Yielding
// periodically bounds that livelock without costing the common case a
// branch miss; the debugWedgeThreshold panic stays as the invariant
// backstop far beyond any legitimate wait.
func spinYield(i int) {
	if i != 0 && i&(spinYieldEvery-1) == 0 {
		runtime.Gosched()
	}
}

const spinYieldEvery = 1024

// resolve returns the current value cell, finalizing and uninstalling any
// foreign descriptor cells it encounters along the way.
func (o *CASObj[T]) resolve(tx *Tx) *cell[T] {
	for i := 0; ; i++ {
		spinYield(i)
		c := o.loadCell()
		if c.desc == nil {
			return c
		}
		c.helpFinalize(tx)
		if i == debugWedgeThreshold {
			panic("medley: resolve wedged (invariant violation): " + o.debugState(nil))
		}
	}
}

// Load is the regular atomic load. It never returns a speculative value: a
// descriptor encountered here is eagerly finalized, per the paper's
// nbtcLoad fallback (readers do not publish metadata, so this costs nothing
// in the common case).
func (o *CASObj[T]) Load() T {
	return o.resolve(nil).val
}

// Store is the regular atomic store, implemented as a swap loop so that it
// composes correctly with installed descriptors.
func (o *CASObj[T]) Store(v T) {
	for {
		c := o.resolve(nil)
		nc := &cell[T]{val: v}
		nc.slot.Store(o)
		if o.state.CompareAndSwap(c, nc) {
			return
		}
	}
}

// CAS is the regular atomic compare-and-swap on values.
func (o *CASObj[T]) CAS(expected, desired T) bool {
	return o.casTx(nil, expected, desired)
}

// casTx is CAS with a thread context: displaced cells are retired into tx's
// arena and replacements drawn from it. It is the execution engine of
// DeferCAS and of non-critical CASes.
func (o *CASObj[T]) casTx(tx *Tx, expected, desired T) bool {
	for {
		c := o.resolve(tx)
		if c.val != expected {
			return false
		}
		nc := newCell(tx, o)
		nc.val = desired
		if o.state.CompareAndSwap(c, nc) {
			retireCell(tx, c)
			return true
		}
		freeCell(tx, nc)
	}
}

// NbtcLoad is the transactional load of the paper's Figure 5. Inside a
// transaction it returns the speculative value if the slot holds this
// transaction's own descriptor (starting the speculation interval),
// finalizes foreign descriptors, and otherwise returns the current value
// together with a ReadWitness that the caller may pass to Tx.AddToReadSet
// if this load turns out to be the linearization point of a read-only
// operation. Outside a transaction it degrades to Load.
func (o *CASObj[T]) NbtcLoad(tx *Tx) (T, ReadWitness) {
	if !tx.InTx() {
		c := o.resolve(tx)
		return c.val, c.witness()
	}
	tx.checkDoomed()
	for i := 0; ; i++ {
		spinYield(i)
		c := o.loadCell()
		if c.desc == nil {
			return c.val, c.witness()
		}
		if c.desc == tx.desc && c.serial == tx.serial {
			tx.startSpec()
			return c.val, ReadWitness{}
		}
		c.helpFinalize(tx)
		bump(&tx.desc.shard.HelpEvents)
		if i == debugWedgeThreshold {
			panic("medley: NbtcLoad wedged (invariant violation): " + o.debugState(tx))
		}
	}
}

// NbtcCAS is the transactional CAS of the paper's Figure 5. linPt marks a
// CAS that, if successful, is the operation's linearization point; pubPt
// marks the operation's publication point (the first CAS that could commit
// the operation to success — a linearizing CAS is always also a publication
// point). Critical CASes — those inside the speculation interval — install
// a descriptor cell that takes effect only when the whole transaction
// commits; CASes outside the interval (e.g., helping) execute immediately.
// Outside a transaction NbtcCAS degrades to CAS.
func (o *CASObj[T]) NbtcCAS(tx *Tx, expected, desired T, linPt, pubPt bool) bool {
	if !tx.InTx() {
		return o.casTx(tx, expected, desired)
	}
	tx.checkDoomed()
	d := tx.desc
	for i := 0; ; i++ {
		spinYield(i)
		if i == debugWedgeThreshold {
			panic("medley: NbtcCAS wedged (invariant violation): " + o.debugState(tx))
		}
		cur := o.loadCell()
		if cur.desc != nil {
			if cur.desc != d || cur.serial != tx.serial {
				cur.helpFinalize(tx)
				bump(&tx.desc.shard.HelpEvents)
				continue
			}
			// Our own descriptor: the speculation interval covers this
			// access. Compare against the speculative value and, on match,
			// replace our own cell in place (prev still names the original
			// displaced value cell, so abort restores pre-transaction
			// state).
			tx.startSpec()
			if cur.val != expected {
				return false
			}
			nc := newCell(tx, o)
			nc.val = desired
			nc.desc = d
			nc.serial = tx.serial
			nc.prev = cur.prev
			if o.state.CompareAndSwap(cur, nc) {
				// cur (the superseded intermediate descriptor cell) is dead:
				// the slot now holds nc, and settle's uninstall of the stale
				// write-set entry will fail its CAS harmlessly.
				retireCell(tx, cur)
				tx.addWrite(nc)
				if linPt {
					tx.endSpec()
				}
				return true
			}
			freeCell(tx, nc)
			// A helper finalized us concurrently; loop to rediscover state.
			continue
		}
		if cur.val != expected {
			return false
		}
		if pubPt {
			tx.startSpec()
		}
		if !tx.inSpec {
			// Non-critical CAS (helping work before the speculation
			// interval): execute immediately.
			nc := newCell(tx, o)
			nc.val = desired
			if o.state.CompareAndSwap(cur, nc) {
				retireCell(tx, cur)
				return true
			}
			freeCell(tx, nc)
			continue
		}
		nc := newCell(tx, o)
		nc.val = desired
		nc.desc = d
		nc.serial = tx.serial
		nc.prev = cur
		if o.state.CompareAndSwap(cur, nc) {
			tx.addWrite(nc)
			if linPt {
				tx.endSpec()
			}
			return true
		}
		freeCell(tx, nc)
		// As in the paper, a failed install is reported to the data
		// structure, whose own retry loop re-runs planning.
		return false
	}
}

// debugWedgeThreshold turns a silently spinning retry loop — which would
// indicate a broken invariant (e.g., an orphaned descriptor cell) — into a
// diagnosable panic. Legitimate contention never approaches this count on
// a single slot within one call.
const debugWedgeThreshold = 200_000_000

// debugState renders the slot's current cell for wedge diagnostics.
func (o *CASObj[T]) debugState(tx *Tx) string {
	c := o.state.Load()
	if c == nil {
		return "<nil cell>"
	}
	if c.desc == nil {
		return fmt.Sprintf("value{%v}", c.val)
	}
	own := tx.InTx() && c.desc == tx.desc && c.serial == tx.serial
	st := c.desc.status.Load()
	return fmt.Sprintf("desc{val=%v serial=%d own=%v status(serial=%d,st=%d)}",
		c.val, c.serial, own, serialOf(st), statusOf(st))
}
