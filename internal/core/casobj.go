package core

import (
	"fmt"
	"sync/atomic"
)

// cell is the unit of state held by a CASObj. Cells are immutable after
// publication; every successful CAS installs a freshly allocated cell, so
// pointer identity of a cell is unforgeable evidence that a slot has not
// changed (the role played by the 64-bit counter in the paper's 128-bit
// CASObj).
//
// A cell with desc == nil is a value cell holding the slot's real value.
// A cell with desc != nil is a descriptor cell: a critical CAS of the
// transaction identified by (desc, serial) has been installed; val is the
// speculative new value and prev the displaced value cell. slot points back
// at the owning CASObj so that any thread holding the cell can uninstall it.
type cell[T comparable] struct {
	val    T
	desc   *Desc
	serial uint64
	prev   *cell[T]
	slot   *CASObj[T]
}

// helpFinalize gets a foreign descriptor out of the way, following the
// paper's tryFinalize (Fig. 6): load the status word first, then confirm
// the cell is still installed — which proves the loaded word's serial is
// this installation's serial — then drive the transaction to a terminal
// state and uninstall this one cell.
func (c *cell[T]) helpFinalize() {
	d := c.desc
	st := d.status.Load()
	if c.slot.state.Load() != c {
		return // already uninstalled; st may belong to a later serial
	}
	st, ok := d.finalize(st, c.serial)
	if !ok {
		return
	}
	c.uninstall(statusOf(st) == StatusCommitted)
}

// uninstall replaces this installed descriptor cell with its outcome: a
// fresh value cell carrying the speculative value on commit, or the
// displaced cell on abort. Competing uninstalls (owner and helpers) race on
// the same expected cell; exactly one wins and the rest are no-ops.
func (c *cell[T]) uninstall(committed bool) {
	if committed {
		c.slot.state.CompareAndSwap(c, &cell[T]{val: c.val, slot: c.slot})
	} else {
		c.slot.state.CompareAndSwap(c, c.prev)
	}
}

// validFor reports whether the slot still holds this cell, or holds a
// descriptor cell of the validating transaction itself that displaced this
// cell (a read followed by the same transaction's own write).
func (c *cell[T]) validFor(d *Desc, serial uint64) bool {
	cur := c.slot.state.Load()
	if cur == c {
		return true
	}
	return cur != nil && cur.desc == d && cur.serial == serial && cur.prev == c
}

// CASObj is a transactional shared word: the augmented atomic object of the
// paper's Figure 1. It may be embedded directly in node structures; the
// zero value is ready to use and holds the zero value of T.
//
// T must be comparable; it is typically a pointer, or a small struct of a
// pointer and a mark bit for structures that tag their links.
type CASObj[T comparable] struct {
	state atomic.Pointer[cell[T]]
}

// NewCASObj returns a CASObj initialized to v.
func NewCASObj[T comparable](v T) *CASObj[T] {
	o := new(CASObj[T])
	o.Init(v)
	return o
}

// Init sets the initial value without synchronization. It must only be used
// before the object is shared (e.g., in constructors), like a plain store
// to a not-yet-published atomic.
func (o *CASObj[T]) Init(v T) {
	o.state.Store(&cell[T]{val: v, slot: o})
}

// loadCell returns the current cell, lazily installing a zero-value cell in
// a zero-valued CASObj.
func (o *CASObj[T]) loadCell() *cell[T] {
	c := o.state.Load()
	if c != nil {
		return c
	}
	nc := &cell[T]{slot: o}
	if o.state.CompareAndSwap(nil, nc) {
		return nc
	}
	return o.state.Load()
}

// resolve returns the current value cell, finalizing and uninstalling any
// foreign descriptor cells it encounters along the way.
func (o *CASObj[T]) resolve() *cell[T] {
	for i := 0; ; i++ {
		c := o.loadCell()
		if c.desc == nil {
			return c
		}
		c.helpFinalize()
		if i == debugWedgeThreshold {
			panic("medley: resolve wedged (invariant violation): " + o.debugState(nil))
		}
	}
}

// Load is the regular atomic load. It never returns a speculative value: a
// descriptor encountered here is eagerly finalized, per the paper's
// nbtcLoad fallback (readers do not publish metadata, so this costs nothing
// in the common case).
func (o *CASObj[T]) Load() T {
	return o.resolve().val
}

// Store is the regular atomic store, implemented as a swap loop so that it
// composes correctly with installed descriptors.
func (o *CASObj[T]) Store(v T) {
	for {
		c := o.resolve()
		if o.state.CompareAndSwap(c, &cell[T]{val: v, slot: o}) {
			return
		}
	}
}

// CAS is the regular atomic compare-and-swap on values.
func (o *CASObj[T]) CAS(expected, desired T) bool {
	for {
		c := o.resolve()
		if c.val != expected {
			return false
		}
		if o.state.CompareAndSwap(c, &cell[T]{val: desired, slot: o}) {
			return true
		}
	}
}

// NbtcLoad is the transactional load of the paper's Figure 5. Inside a
// transaction it returns the speculative value if the slot holds this
// transaction's own descriptor (starting the speculation interval),
// finalizes foreign descriptors, and otherwise returns the current value
// together with a ReadWitness that the caller may pass to Tx.AddToReadSet
// if this load turns out to be the linearization point of a read-only
// operation. Outside a transaction it degrades to Load.
func (o *CASObj[T]) NbtcLoad(tx *Tx) (T, ReadWitness) {
	if !tx.InTx() {
		c := o.resolve()
		return c.val, c
	}
	tx.checkDoomed()
	for i := 0; ; i++ {
		c := o.loadCell()
		if c.desc == nil {
			return c.val, c
		}
		if c.desc == tx.desc && c.serial == tx.serial {
			tx.startSpec()
			return c.val, alwaysValid{}
		}
		c.helpFinalize()
		tx.desc.shard.HelpEvents.Add(1)
		if i == debugWedgeThreshold {
			panic("medley: NbtcLoad wedged (invariant violation): " + o.debugState(tx))
		}
	}
}

// NbtcCAS is the transactional CAS of the paper's Figure 5. linPt marks a
// CAS that, if successful, is the operation's linearization point; pubPt
// marks the operation's publication point (the first CAS that could commit
// the operation to success — a linearizing CAS is always also a publication
// point). Critical CASes — those inside the speculation interval — install
// a descriptor cell that takes effect only when the whole transaction
// commits; CASes outside the interval (e.g., helping) execute immediately.
// Outside a transaction NbtcCAS degrades to CAS.
func (o *CASObj[T]) NbtcCAS(tx *Tx, expected, desired T, linPt, pubPt bool) bool {
	if !tx.InTx() {
		return o.CAS(expected, desired)
	}
	tx.checkDoomed()
	d := tx.desc
	for i := 0; ; i++ {
		if i == debugWedgeThreshold {
			panic("medley: NbtcCAS wedged (invariant violation): " + o.debugState(tx))
		}
		cur := o.loadCell()
		if cur.desc != nil {
			if cur.desc != d || cur.serial != tx.serial {
				cur.helpFinalize()
				tx.desc.shard.HelpEvents.Add(1)
				continue
			}
			// Our own descriptor: the speculation interval covers this
			// access. Compare against the speculative value and, on match,
			// replace our own cell in place (prev still names the original
			// displaced value cell, so abort restores pre-transaction
			// state).
			tx.startSpec()
			if cur.val != expected {
				return false
			}
			nc := &cell[T]{val: desired, desc: d, serial: tx.serial, prev: cur.prev, slot: o}
			if o.state.CompareAndSwap(cur, nc) {
				tx.addWrite(nc)
				if linPt {
					tx.endSpec()
				}
				return true
			}
			// A helper finalized us concurrently; loop to rediscover state.
			continue
		}
		if cur.val != expected {
			return false
		}
		if pubPt {
			tx.startSpec()
		}
		if !tx.inSpec {
			// Non-critical CAS (helping work before the speculation
			// interval): execute immediately.
			if o.state.CompareAndSwap(cur, &cell[T]{val: desired, slot: o}) {
				return true
			}
			continue
		}
		nc := &cell[T]{val: desired, desc: d, serial: tx.serial, prev: cur, slot: o}
		if o.state.CompareAndSwap(cur, nc) {
			tx.addWrite(nc)
			if linPt {
				tx.endSpec()
			}
			return true
		}
		// As in the paper, a failed install is reported to the data
		// structure, whose own retry loop re-runs planning.
		return false
	}
}

// debugWedgeThreshold turns a silently spinning retry loop — which would
// indicate a broken invariant (e.g., an orphaned descriptor cell) — into a
// diagnosable panic. Legitimate contention never approaches this count on
// a single slot within one call.
const debugWedgeThreshold = 200_000_000

// debugState renders the slot's current cell for wedge diagnostics.
func (o *CASObj[T]) debugState(tx *Tx) string {
	c := o.state.Load()
	if c == nil {
		return "<nil cell>"
	}
	if c.desc == nil {
		return fmt.Sprintf("value{%v}", c.val)
	}
	own := tx.InTx() && c.desc == tx.desc && c.serial == tx.serial
	st := c.desc.status.Load()
	return fmt.Sprintf("desc{val=%v serial=%d own=%v status(serial=%d,st=%d)}",
		c.val, c.serial, own, serialOf(st), statusOf(st))
}
