package core

import "errors"

// This file is the group-commit path: RunGroup merges a batch of
// independent logical transactions into one physical commit, so the whole
// group pays the per-commit protocol — Begin's status reset, the read-set
// publication fence, the InPrep→InProg and terminal status CASes, the
// settle sweep and finish tail — exactly once instead of once per member.
//
// Correctness falls out of ordinary serializability: the merged
// transaction executes the members back-to-back in member order, so a
// member reads its predecessors' speculative effects through the normal
// descriptor-cell resolution, and a successful merged commit is
// indistinguishable from the members committing individually in that
// order with nothing interleaved between them. Conflicts with concurrent
// transactions (failed validation, a helper's eager abort) roll the whole
// merged attempt back — every installed cell uninstalls to its displaced
// value — after which the fallback re-runs each member as its own
// transaction via RunRetry, the pre-group behavior.
//
// The trade is blast radius: a merged group is a bigger, longer-lived
// footprint, so one hot cell can abort all its members' work. groupAttempts
// bounds how much work is re-speculated before falling back, and the
// adaptive backoff (backoff.go) is fed from group outcomes too, so a
// worker whose groups keep losing backs off like any other loser.

// groupAttempts is how many times RunGroup re-tries the merged commit
// before falling back to individual member transactions.
const groupAttempts = 2

// RunGroup executes n member bodies, each a logical transaction, until
// every member has committed or returned its own non-abort error; it
// returns the first such member error, or nil when all members committed.
// member(i) runs the i-th body and must be re-runnable: a body may execute
// several times (merged attempts, then individual retries), with all
// transactional effects of abandoned attempts rolled back in between.
//
// With group commit enabled on the Tx's manager (the default;
// TxManager.DisableGroupCommit ablates it) and n > 1, the members are
// merged into one physical transaction and committed with one protocol
// round; the GroupCommits/GroupedTxns shard counters record each merge.
// On conflict or member error the merged attempt rolls back and every
// member falls back to its own RunRetry, preserving member order.
//
// Like every Tx method, RunGroup is owner-only: it must be called on the
// goroutine that registered tx, with no transaction open.
func (tx *Tx) RunGroup(n int, member func(i int) error) error {
	return tx.RunGroupFused(n, nil, member)
}

// RunGroupFused is RunGroup with a caller-supplied merged-attempt body:
// when fused is non-nil the merged transaction runs it instead of looping
// over the members, letting a store-side sweep route the whole group
// through one pass (kv.ApplyGroup flattens a group into a single
// shard-grouped routing sweep this way). fused must be observationally
// equivalent to running member(0..n-1) back-to-back in order — the
// individual fallback still uses member, so any divergence would change
// outcomes between the merged and fallen-back executions.
func (tx *Tx) RunGroupFused(n int, fused func() error, member func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if n > 1 && tx.group {
		var memberErr error
		body := fused
		if body == nil {
			body = func() error {
				for i := 0; i < n; i++ {
					if err := member(i); err != nil {
						memberErr = err
						return err
					}
				}
				return nil
			}
		}
		for attempt := 0; attempt < groupAttempts; attempt++ {
			err := tx.Run(body)
			if err == nil {
				shard := tx.desc.shard
				bump(&shard.GroupCommits)
				bumpN(&shard.GroupedTxns, uint64(n))
				tx.cm.note(tx, false)
				return nil
			}
			tx.cm.note(tx, true)
			if !errors.Is(err, ErrTxAborted) {
				// A member failed of its own accord. The merged
				// transaction rolled back every member's effects, so the
				// individual fallback gives each member its own outcome
				// (including re-surfacing memberErr from its own
				// transaction).
				_ = memberErr
				break
			}
			tx.backoff(attempt)
		}
	}
	// Individual fallback: every member as its own transaction, in member
	// order. RunRetry absorbs aborts, so the only errors that surface are
	// the members' own.
	var firstErr error
	for i := 0; i < n; i++ {
		err := tx.RunRetry(func() error { return member(i) })
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
