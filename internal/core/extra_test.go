package core

import (
	"errors"
	"testing"
)

// TestAddReadCheckGatesCommit verifies that arbitrary read-check
// predicates (txMontage's epoch check) gate commit for both the owner and
// helper validation paths.
func TestAddReadCheckGatesCommit(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](0)
	allow := true
	err := tx.Run(func() error {
		tx.AddReadCheck(func() bool { return allow })
		_ = o.NbtcCAS(tx, 0, 1, true, true)
		return nil
	})
	if err != nil {
		t.Fatalf("commit with passing check: %v", err)
	}
	allow = false
	err = tx.Run(func() error {
		tx.AddReadCheck(func() bool { return allow })
		_ = o.NbtcCAS(tx, 1, 2, true, true)
		return nil
	})
	if !errors.Is(err, ErrTxAborted) {
		t.Fatalf("commit with failing check: %v", err)
	}
	if o.Load() != 1 {
		t.Fatalf("failed check leaked a write: %d", o.Load())
	}
}

// TestHelperAbortsOnFailedValidation puts a transaction into InProg with a
// stale read set; a helping thread must drive it to Aborted, not
// Committed.
func TestHelperAbortsOnFailedValidation(t *testing.T) {
	mgr := NewTxManager()
	t1 := mgr.Register()
	o := NewCASObj[int](0)
	witnessSrc := NewCASObj[int](7)

	t1.Begin()
	v, w := witnessSrc.NbtcLoad(t1)
	if v != 7 {
		t.Fatal("setup")
	}
	t1.AddToReadSet(w)
	if !o.NbtcCAS(t1, 0, 1, true, true) {
		t.Fatal("install failed")
	}
	// Invalidate the read, then hand the InProg descriptor to a helper.
	witnessSrc.Store(8)
	d := t1.desc
	d.reads.Store(&publishedReads{serial: t1.serial, entries: t1.reads})
	if !d.stsCAS(packStatus(t1.serial, StatusInPrep), StatusInPrep, StatusInProg) {
		t.Fatal("setReady failed")
	}
	// A non-transactional reader encounters the descriptor and must help
	// it to ABORT (validation fails), restoring the old value.
	if got := o.Load(); got != 0 {
		t.Fatalf("helper resolved to %d, want rollback to 0", got)
	}
	if statusOf(d.status.Load()) != StatusAborted {
		t.Fatal("descriptor not aborted by helper despite stale reads")
	}
	if err := t1.End(); !errors.Is(err, ErrTxAborted) {
		t.Fatalf("owner End = %v, want abort", err)
	}
}

// TestInSpeculationLifecycle tracks the speculation interval across
// publication and linearization points.
func TestInSpeculationLifecycle(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	a := NewCASObj[int](0)
	b := NewCASObj[int](0)
	_ = tx.Run(func() error {
		tx.OpStart()
		if tx.InSpeculation() {
			t.Fatal("speculating before any publication")
		}
		// Publication point without linearization: interval opens.
		if !a.NbtcCAS(tx, 0, 1, false, true) {
			t.Fatal("pub CAS failed")
		}
		if !tx.InSpeculation() {
			t.Fatal("not speculating after publication point")
		}
		// Linearization point: interval closes.
		if !b.NbtcCAS(tx, 0, 1, true, false) {
			t.Fatal("lin CAS failed")
		}
		if tx.InSpeculation() {
			t.Fatal("still speculating after linearization point")
		}
		return nil
	})
	if a.Load() != 1 || b.Load() != 1 {
		t.Fatal("both critical CASes must commit together")
	}
}

// TestRetirePathways covers Tx.Retire with and without an SMR domain, in
// and outside transactions.
func TestRetirePathways(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	ran := 0
	// No SMR, outside tx: immediate.
	tx.Retire(func() { ran++ })
	if ran != 1 {
		t.Fatal("retire outside tx not immediate")
	}
	// No SMR, inside tx: on commit only.
	_ = tx.Run(func() error {
		tx.Retire(func() { ran++ })
		tx.Abort()
		return nil
	})
	if ran != 1 {
		t.Fatal("retire ran despite abort")
	}
	_ = tx.Run(func() error {
		tx.Retire(func() { ran++ })
		return nil
	})
	if ran != 2 {
		t.Fatal("retire skipped on commit")
	}
	// With SMR: routed through the domain.
	var got []func()
	tx.SetSMR(funcRetirer(func(f func()) { got = append(got, f) }))
	_ = tx.Run(func() error {
		tx.Retire(func() { ran++ })
		return nil
	})
	if len(got) != 1 {
		t.Fatalf("SMR received %d retirements, want 1", len(got))
	}
	got[0]()
	if ran != 3 {
		t.Fatal("SMR-deferred free did not run")
	}
	// Nil Tx: immediate.
	var nilTx *Tx
	nilTx.Retire(func() { ran++ })
	if ran != 4 {
		t.Fatal("nil-tx retire not immediate")
	}
}

type funcRetirer func(func())

func (f funcRetirer) Retire(free func()) { f(free) }

// TestTNewAndTDelete covers the allocation API surface.
func TestTNewAndTDelete(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	deleted := false
	err := tx.Run(func() error {
		p := TNew[int](tx)
		*p = 5
		TDelete(tx, func() { deleted = true })
		return nil
	})
	if err != nil || !deleted {
		t.Fatalf("err=%v deleted=%v", err, deleted)
	}
	deleted = false
	_ = tx.Run(func() error {
		TDelete(tx, func() { deleted = true })
		tx.Abort()
		return nil
	})
	if deleted {
		t.Fatal("tDelete took effect despite abort")
	}
}

// TestExplicitBeginEnd drives the low-level API directly.
func TestExplicitBeginEnd(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](0)
	tx.Begin()
	if !o.NbtcCAS(tx, 0, 9, true, true) {
		t.Fatal("CAS failed")
	}
	if err := tx.End(); err != nil {
		t.Fatalf("End: %v", err)
	}
	if o.Load() != 9 {
		t.Fatal("explicit commit lost")
	}
	tx.Begin()
	_ = o.NbtcCAS(tx, 9, 10, true, true)
	tx.AbortNow()
	if o.Load() != 9 {
		t.Fatal("AbortNow did not roll back")
	}
	if tx.InTx() {
		t.Fatal("still in tx after AbortNow")
	}
}

// TestEndWithoutBeginPanics guards API misuse.
func TestEndWithoutBeginPanics(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("End without Begin did not panic")
		}
	}()
	_ = tx.End()
}

// TestManagerOfNilTx covers nil-receiver accessors.
func TestManagerOfNilTx(t *testing.T) {
	var tx *Tx
	if tx.Manager() != nil {
		t.Fatal("nil tx has a manager")
	}
	if tx.InTx() || tx.InSpeculation() {
		t.Fatal("nil tx claims activity")
	}
}
