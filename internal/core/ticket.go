package core

// This file is the commit-order hook consumed by the change-data-capture
// layer (internal/cdc): a writing transaction draws a ticket immediately
// before its commit point becomes reachable, so ticket order is a legal
// serialization order of the writing transactions it covers.
//
// The ordering argument. A transaction's writes become visible to others
// only once its status word is terminal-Committed (readers resolving an
// installed descriptor cell consult the status; uninstalls happen after
// the terminal CAS). The draw sites are placed strictly before the first
// CAS that can lead to Committed:
//
//   - general path (End): after read-set publication, before the
//     InPrep→InProg CAS — the earliest instant a helper could drive the
//     transaction to Committed is after that CAS;
//   - single-write fast path (endSingleWrite): after owner-side
//     validation, before the InPrep→Committed CAS.
//
// So for any two writing transactions A and B where B depends on A
// (B read or overwrote one of A's writes): B's conflicting access
// resolved A's cell, which requires terminal(A) < access(B); B draws
// after its own accesses and before its own terminal CAS, giving
// draw(A) < terminal(A) < access(B) < draw(B). Replaying a feed in ticket
// order therefore never applies a dependent write before the write it
// depends on.
//
// Tickets are drawn only by transactions that installed at least one
// descriptor cell (len(writes) > 0): read-only transactions publish
// nothing and would only punch permanent holes in the sequence. A drawn
// ticket is settled exactly once — the owner publishes it after a
// committed run (CommittedTicket), or finish(false) cancels it on abort —
// which is what lets the feed deliver in strictly contiguous ticket order
// (cdc.Feed fills cancelled holes and stalls on unsettled ones).

// CommitTicketer is the commit-order sink a Tx draws tickets from;
// *cdc.Feed implements it. DrawTicket must be cheap and non-blocking —
// it runs on the commit path of every writing transaction — and the
// ticket space must be dense: every drawn ticket is eventually either
// published by the owner or cancelled here.
type CommitTicketer interface {
	// DrawTicket allocates the next commit ticket. Called with the
	// transaction still invisible (pre-commit); see the ordering argument
	// above.
	DrawTicket() uint64
	// CancelTicket settles a drawn ticket whose transaction aborted, so
	// consumers waiting on contiguity can skip it.
	CancelTicket(t uint64)
}

// SetCommitTicketer attaches a commit-order sink to this Tx: every
// subsequent committed transaction that installed at least one write
// draws a ticket before its commit point and exposes it through
// CommittedTicket; aborted draws are cancelled automatically. Passing nil
// detaches. Owner-only, like every Tx method.
func (tx *Tx) SetCommitTicketer(t CommitTicketer) {
	tx.ticketer = t
}

// CommittedTicket returns the ticket drawn by the most recently committed
// transaction on this Tx and whether one exists. It reports false when no
// ticketer is attached, when the last transaction was read-only (no
// ticket drawn), or after the next Begin (each transaction's ticket must
// be consumed before the owner opens another).
func (tx *Tx) CommittedTicket() (uint64, bool) {
	return tx.lastTicket, tx.lastTicketOK
}

// drawTicket draws this transaction's commit ticket if a ticketer is
// attached and the transaction wrote. Idempotent per transaction: the
// settle paths can race into End once, never twice.
func (tx *Tx) drawTicket() {
	if tx.ticketer == nil || tx.ticketDrawn || len(tx.writes) == 0 {
		return
	}
	tx.ticket = tx.ticketer.DrawTicket()
	tx.ticketDrawn = true
}

// settleTicket is called from finish with the transaction's outcome: a
// committed draw is parked for CommittedTicket, an aborted one cancelled
// so the feed's contiguity drain can pass it.
func (tx *Tx) settleTicket(committed bool) {
	if !tx.ticketDrawn {
		return
	}
	tx.ticketDrawn = false
	if committed {
		tx.lastTicket, tx.lastTicketOK = tx.ticket, true
		return
	}
	tx.ticketer.CancelTicket(tx.ticket)
}
