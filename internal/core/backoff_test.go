package core

import (
	"testing"
	"time"
)

// instrumentBackoff swaps the ladder's yield/sleep seams for recorders and
// returns (yields, sleeps, restore). Tests that use it must not run the
// ladder from other goroutines while instrumented.
func instrumentBackoff() (*int, *[]time.Duration, func()) {
	yields := new(int)
	sleeps := new([]time.Duration)
	oldYield, oldSleep := backoffYield, backoffSleep
	backoffYield = func() { *yields++ }
	backoffSleep = func(d time.Duration) { *sleeps = append(*sleeps, d) }
	return yields, sleeps, func() {
		backoffYield, backoffSleep = oldYield, oldSleep
	}
}

// TestBackoffLadderContract pins the ladder shape the adaptive manager
// must preserve: on a cold Tx (no contention history) the first
// backoffYields attempts are plain yields with no sleep, and every sleep
// the ladder ever takes is strictly bounded by backoffMax regardless of
// the contention state steering it.
func TestBackoffLadderContract(t *testing.T) {
	yields, sleeps, restore := instrumentBackoff()
	defer restore()

	mgr := NewTxManager()
	tx := mgr.Register()
	for attempt := 0; attempt < backoffYields; attempt++ {
		tx.backoff(attempt)
	}
	if *yields != backoffYields || len(*sleeps) != 0 {
		t.Fatalf("cold ladder: %d yields, %d sleeps over the first %d attempts, want %d yields and no sleeps",
			*yields, len(*sleeps), backoffYields, backoffYields)
	}

	// Every contention regime — cold, moderate, saturated, hot — must keep
	// each sleep in (0, backoffMax] at every ladder depth.
	states := []contention{
		{},
		{ewma: ewmaOne / 8},
		{ewma: ewmaOne},
		{ewma: ewmaOne, hot: true},
	}
	for _, st := range states {
		tx.cm = st
		*sleeps = (*sleeps)[:0]
		for attempt := 0; attempt < 64; attempt++ {
			tx.backoff(attempt)
		}
		if len(*sleeps) == 0 {
			t.Fatalf("state %+v: ladder never slept over 64 attempts", st)
		}
		for _, d := range *sleeps {
			if d <= 0 || d > backoffMax {
				t.Fatalf("state %+v: sleep %v outside (0, %v]", st, d, backoffMax)
			}
		}
	}
}

// TestBackoffAdaptiveSteering checks the directions the adaptive manager
// moves in: a high abort-rate EWMA (or a detected hot conflict) stops
// spinning almost immediately and widens the jitter window to the full
// cap, while a quiet shard spins longer and sleeps shorter.
func TestBackoffAdaptiveSteering(t *testing.T) {
	quiet := contention{ewma: 0}
	busy := contention{ewma: ewmaOne / 2}
	hot := contention{hot: true}
	if qy, by := quiet.yields(), busy.yields(); qy <= by {
		t.Fatalf("yields: quiet %d <= busy %d, want the quiet shard to spin longer", qy, by)
	}
	if busy.yields() != 1 || hot.yields() != 1 {
		t.Fatalf("busy/hot yields = %d/%d, want 1/1", busy.yields(), hot.yields())
	}
	if qw, bw := quiet.windowLimit(), busy.windowLimit(); qw >= bw {
		t.Fatalf("window: quiet %v >= busy %v, want the busy shard to jitter wider", qw, bw)
	}
	if busy.windowLimit() != backoffMax || hot.windowLimit() != backoffMax {
		t.Fatalf("busy/hot window = %v/%v, want %v", busy.windowLimit(), hot.windowLimit(), backoffMax)
	}
}

// TestBackoffEwmaTracksOutcomes checks that noted aborts raise the EWMA,
// noted commits decay it, and that a streak of aborts accompanied by
// fresh eager-abort traffic on the shard trips the hot-conflict detector
// — while the same streak without displacement traffic (pure validation
// failures) does not.
func TestBackoffEwmaTracksOutcomes(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()

	for i := 0; i < 16; i++ {
		tx.cm.note(tx, true)
	}
	raised := tx.cm.ewma
	if raised <= ewmaOne/3 {
		t.Fatalf("EWMA after 16 aborts = %d, want > %d", raised, ewmaOne/3)
	}
	for i := 0; i < 64; i++ {
		tx.cm.note(tx, false)
	}
	if tx.cm.ewma >= raised || tx.cm.ewma > ewmaOne/16 {
		t.Fatalf("EWMA after 64 commits = %d, want decayed below %d", tx.cm.ewma, ewmaOne/16)
	}

	// Aborts with the shard's AbortsByOthers advancing: hot.
	for i := 0; i < hotStreakLen+1; i++ {
		tx.desc.shard.AbortsByOthers.Add(1)
		tx.cm.note(tx, true)
	}
	if !tx.cm.hot {
		t.Fatal("abort streak with displacement traffic did not trip hot-conflict detection")
	}
	// One commit clears it.
	tx.cm.note(tx, false)
	if tx.cm.hot {
		t.Fatal("hot flag survived a committed attempt")
	}
	// The same streak without displacement traffic stays cold.
	for i := 0; i < hotStreakLen+4; i++ {
		tx.cm.note(tx, true)
	}
	if tx.cm.hot {
		t.Fatal("abort streak without displacement traffic tripped hot-conflict detection")
	}
}

// TestBackoffJitterDeterministic pins the jitter PRNG contract: the
// xorshift sequence is a pure function of the Tx's thread id, so two
// contexts with the same tid produce identical sequences and a given
// run's backoff schedule is reproducible.
func TestBackoffJitterDeterministic(t *testing.T) {
	// Fresh managers both hand out tid 0 first.
	tx1 := NewTxManager().Register()
	tx2 := NewTxManager().Register()
	for i := 0; i < 256; i++ {
		a, b := tx1.nextRand(), tx2.nextRand()
		if a != b {
			t.Fatalf("step %d: same-seed sequences diverge (%d != %d)", i, a, b)
		}
		if a == 0 {
			t.Fatalf("step %d: xorshift emitted 0 (degenerate state)", i)
		}
	}
	// Different tids give different streams.
	m := NewTxManager()
	ta, tb := m.Register(), m.Register()
	same := 0
	for i := 0; i < 64; i++ {
		if ta.nextRand() == tb.nextRand() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("distinct tids produced identical jitter streams")
	}
}
