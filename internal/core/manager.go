package core

import (
	"sync"
	"sync/atomic"
)

// TxManager holds metadata shared among all Composable structures intended
// for use in the same transactions (the paper's TxManager). Structures
// constructed against the same manager may participate in the same
// transaction; the manager also aggregates statistics.
//
// Statistics are kept in per-worker shards: Register hands each Tx its own
// cache-line-padded StatShard, so the hot transaction path (begin, commit,
// abort, help) never contends on a shared counter word. Stats folds the
// shards into one snapshot on demand.
type TxManager struct {
	nextTID atomic.Int64
	pooling atomic.Bool
	nofast  atomic.Bool
	nogroup atomic.Bool

	mu     sync.Mutex
	shards []*StatShard
}

// NewTxManager creates a transaction manager.
func NewTxManager() *TxManager {
	return &TxManager{}
}

// EnablePooling opts this manager's transactions into cell/node recycling:
// a Tx registered afterwards that is given an SMR handle supporting
// pool-routed retirement (Tx.SetSMR with an *ebr.Handle) sources cells and
// structure nodes from per-Tx arenas and recycles them after an EBR grace
// period instead of allocating fresh blocks.
//
// Pooling requires every goroutine operating on this manager's structures
// to hold its handle's critical section (ebr.Handle.Enter/Exit) around
// each transaction or bare operation; goroutines without a handle (nil Tx,
// or SetSMR never called) stay safe but their displaced blocks fall back
// to the garbage collector. Call before registering workers.
func (m *TxManager) EnablePooling() { m.pooling.Store(true) }

// PoolingEnabled reports whether EnablePooling was called.
func (m *TxManager) PoolingEnabled() bool { return m.pooling.Load() }

// DisableFastPaths turns the commit fast paths off for Txs registered
// afterwards: every transaction then runs the full publish/InProg commit
// handshake regardless of its write-set size. The fast paths are on by
// default; the switch exists for ablation (cmd/medley-bench -fastpaths=off)
// and mirrors the EnablePooling pattern — call before registering workers.
//
// The fast paths are pure eliding optimizations (see Tx.End): disabling
// them changes the atomic-operation count of a commit, never its outcome.
func (m *TxManager) DisableFastPaths() { m.nofast.Store(true) }

// EnableFastPaths re-enables the commit fast paths for Txs registered
// afterwards (the default).
func (m *TxManager) EnableFastPaths() { m.nofast.Store(false) }

// FastPathsEnabled reports whether Txs registered now take the commit fast
// paths.
func (m *TxManager) FastPathsEnabled() bool { return !m.nofast.Load() }

// DisableGroupCommit turns the group-commit path off for Txs registered
// afterwards: Tx.RunGroup then executes every member as its own
// transaction instead of merging the group into one commit. Group commit
// is on by default; the switch exists for ablation
// (cmd/medley-bench -groupcommit=off) and mirrors DisableFastPaths — call
// before registering workers.
//
// Like the fast paths, group commit is outcome-preserving: a merged group
// commits its members atomically in member order, which is one of the
// serial orders the individual path could also have produced.
func (m *TxManager) DisableGroupCommit() { m.nogroup.Store(true) }

// EnableGroupCommit re-enables group commit for Txs registered afterwards
// (the default).
func (m *TxManager) EnableGroupCommit() { m.nogroup.Store(false) }

// GroupCommitEnabled reports whether Txs registered now merge commit
// groups.
func (m *TxManager) GroupCommitEnabled() bool { return !m.nogroup.Load() }

// StatShard is one worker's slice of the manager's statistics: every
// counter is written by exactly one goroutine on the transaction fast path
// (cross-thread writes happen only on the rare contention events they
// count), and padded so that neighbouring shards never share a cache line.
type StatShard struct {
	Begins          atomic.Uint64 // transactions started
	Commits         atomic.Uint64 // transactions committed
	Aborts          atomic.Uint64 // transactions aborted (any cause)
	AbortsByOthers  atomic.Uint64 // aborts inflicted on this worker by eager contention management
	HelpEvents      atomic.Uint64 // foreign descriptors this worker finalized
	PoolGets        atomic.Uint64 // cell/node requests served by this worker's pools
	PoolHits        atomic.Uint64 // requests satisfied from a freelist (rest hit the heap)
	PoolRetires     atomic.Uint64 // blocks this worker retired into its pools
	ReadOnlyCommits atomic.Uint64 // commits that took the read-only fast path (no publication, no status CAS)
	FastPathCommits atomic.Uint64 // commits that took any fast path (read-only + single-write)
	GroupCommits    atomic.Uint64 // merged commits produced by Tx.RunGroup (one per group)
	GroupedTxns     atomic.Uint64 // logical transactions committed inside merged groups
	_               [32]byte      // pad 12x8-byte counters out to two cache lines
}

// bump increments a single-writer StatShard counter without an atomic RMW:
// every counter except AbortsByOthers (written by the finalizing thread on
// the victim's shard) is written by exactly one goroutine, so a load+store
// pair can never lose an update, and concurrent Stats snapshots still see a
// plain atomic store. On the commit fast paths this is the difference
// between zero RMWs per transaction and three.
func bump(c *atomic.Uint64) { c.Store(c.Load() + 1) }

// bumpN is bump for batched counter flushes (flushPoolStats).
func bumpN(c *atomic.Uint64, n uint64) { c.Store(c.Load() + n) }

// snapshot reads the shard into a Stats value.
func (s *StatShard) snapshot() Stats {
	return Stats{
		Begins:          s.Begins.Load(),
		Commits:         s.Commits.Load(),
		Aborts:          s.Aborts.Load(),
		AbortsByOthers:  s.AbortsByOthers.Load(),
		HelpEvents:      s.HelpEvents.Load(),
		PoolGets:        s.PoolGets.Load(),
		PoolHits:        s.PoolHits.Load(),
		PoolRetires:     s.PoolRetires.Load(),
		ReadOnlyCommits: s.ReadOnlyCommits.Load(),
		FastPathCommits: s.FastPathCommits.Load(),
		GroupCommits:    s.GroupCommits.Load(),
		GroupedTxns:     s.GroupedTxns.Load(),
	}
}

// Register creates a fresh per-goroutine transaction context. Each worker
// goroutine must use its own Tx; the Tx (and its descriptor) is reused
// across that goroutine's transactions.
func (m *TxManager) Register() *Tx {
	tid := int(m.nextTID.Add(1) - 1)
	shard := &StatShard{}
	m.mu.Lock()
	m.shards = append(m.shards, shard)
	m.mu.Unlock()
	d := &Desc{tid: tid, mgr: m, shard: shard}
	// Serial 0 with a terminal status so stale references can never
	// mistake the pristine descriptor for an in-flight transaction.
	d.status.Store(packStatus(0, StatusAborted))
	return &Tx{mgr: m, desc: d, fast: m.FastPathsEnabled(), group: m.GroupCommitEnabled()}
}

// Stats is a snapshot of manager counters.
type Stats struct {
	Begins          uint64 // transactions started
	Commits         uint64 // transactions committed
	Aborts          uint64 // transactions aborted (any cause)
	AbortsByOthers  uint64 // aborts inflicted by eager contention management
	HelpEvents      uint64 // foreign descriptors finalized while operating
	PoolGets        uint64 // pool requests (cells + nodes) under pooling
	PoolHits        uint64 // pool requests served from a freelist
	PoolRetires     uint64 // blocks retired into pools
	ReadOnlyCommits uint64 // commits via the read-only fast path
	FastPathCommits uint64 // commits via any fast path (read-only + single-write)
	GroupCommits    uint64 // merged group commits (one per group; counted once in Commits)
	GroupedTxns     uint64 // logical transactions committed inside merged groups
}

// LogicalCommits is the number of logical transactions that committed: a
// merged group counts once in Commits but carries GroupedTxns members, so
// the logical total is Commits with each group re-expanded.
func (s Stats) LogicalCommits() uint64 {
	return s.Commits - s.GroupCommits + s.GroupedTxns
}

// add folds o into s.
func (s *Stats) add(o Stats) {
	s.Begins += o.Begins
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.AbortsByOthers += o.AbortsByOthers
	s.HelpEvents += o.HelpEvents
	s.PoolGets += o.PoolGets
	s.PoolHits += o.PoolHits
	s.PoolRetires += o.PoolRetires
	s.ReadOnlyCommits += o.ReadOnlyCommits
	s.FastPathCommits += o.FastPathCommits
	s.GroupCommits += o.GroupCommits
	s.GroupedTxns += o.GroupedTxns
}

// Stats returns a snapshot of the manager's counters, aggregated over all
// per-worker shards. Shards are read without synchronizing against their
// writers, so the snapshot is per-counter (not cross-counter) consistent —
// the same guarantee the previous shared-counter implementation gave.
func (m *TxManager) Stats() Stats {
	var out Stats
	m.mu.Lock()
	shards := m.shards
	m.mu.Unlock()
	for _, s := range shards {
		out.add(s.snapshot())
	}
	return out
}

// ShardStats returns one Stats snapshot per registered worker, in
// registration order, for tests and tooling that want to attribute work
// to individual workers rather than read the aggregate.
func (m *TxManager) ShardStats() []Stats {
	m.mu.Lock()
	shards := m.shards
	m.mu.Unlock()
	out := make([]Stats, len(shards))
	for i, s := range shards {
		out[i] = s.snapshot()
	}
	return out
}

// ShardStats returns a snapshot of this transaction context's own statistics
// shard. Callers that drive one Tx per logical task can difference
// consecutive snapshots to attribute commits and aborts to that task without
// touching the manager-wide aggregate.
func (tx *Tx) ShardStats() Stats { return tx.desc.shard.snapshot() }
