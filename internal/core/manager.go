package core

import "sync/atomic"

// TxManager holds metadata shared among all Composable structures intended
// for use in the same transactions (the paper's TxManager). Structures
// constructed against the same manager may participate in the same
// transaction; the manager also aggregates statistics.
type TxManager struct {
	nextTID atomic.Int64

	// Statistics (monotonic counters).
	begins         atomic.Uint64
	commits        atomic.Uint64
	aborts         atomic.Uint64
	abortsByOthers atomic.Uint64 // eager contention-management aborts inflicted
	helpEvents     atomic.Uint64 // foreign descriptors finalized during ops
}

// NewTxManager creates a transaction manager.
func NewTxManager() *TxManager {
	return &TxManager{}
}

// Register creates a fresh per-goroutine transaction context. Each worker
// goroutine must use its own Tx; the Tx (and its descriptor) is reused
// across that goroutine's transactions.
func (m *TxManager) Register() *Tx {
	tid := int(m.nextTID.Add(1) - 1)
	d := &Desc{tid: tid, mgr: m}
	// Serial 0 with a terminal status so stale references can never
	// mistake the pristine descriptor for an in-flight transaction.
	d.status.Store(packStatus(0, StatusAborted))
	return &Tx{mgr: m, desc: d}
}

// Stats is a snapshot of manager counters.
type Stats struct {
	Begins         uint64 // transactions started
	Commits        uint64 // transactions committed
	Aborts         uint64 // transactions aborted (any cause)
	AbortsByOthers uint64 // aborts inflicted by eager contention management
	HelpEvents     uint64 // foreign descriptors finalized while operating
}

// Stats returns a snapshot of the manager's counters.
func (m *TxManager) Stats() Stats {
	return Stats{
		Begins:         m.begins.Load(),
		Commits:        m.commits.Load(),
		Aborts:         m.aborts.Load(),
		AbortsByOthers: m.abortsByOthers.Load(),
		HelpEvents:     m.helpEvents.Load(),
	}
}
