package core

import (
	"sync"
	"testing"
)

// boostedCounter is a deliberately lock-based structure.
type boostedCounter struct {
	mu sync.Mutex
	n  int
}

func TestBoostCommitAndAbort(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	c := &boostedCounter{}
	o := NewCASObj[int](0)

	// Commit: boosted increment composes with a Medley write.
	err := tx.Run(func() error {
		tx.Boost(&c.mu, func() { c.n++ }, func() { c.n-- })
		if !o.NbtcCAS(tx, 0, 1, true, true) {
			t.Fatal("CAS failed")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.n != 1 || o.Load() != 1 {
		t.Fatalf("state = (%d,%d), want (1,1)", c.n, o.Load())
	}

	// Abort: the inverse must undo the eager boosted effect.
	_ = tx.Run(func() error {
		tx.Boost(&c.mu, func() { c.n += 10 }, func() { c.n -= 10 })
		tx.Boost(&c.mu, func() { c.n *= 2 }, func() { c.n /= 2 })
		tx.Abort()
		return nil
	})
	if c.n != 1 {
		t.Fatalf("abort compensation failed: n = %d, want 1", c.n)
	}
	// The lock must be free again.
	if !c.mu.TryLock() {
		t.Fatal("boosted lock leaked")
	}
	c.mu.Unlock()
}

func TestBoostOutsideTx(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	c := &boostedCounter{}
	tx.Boost(&c.mu, func() { c.n = 5 }, func() { c.n = 0 })
	if c.n != 5 {
		t.Fatal("boost outside tx did not apply")
	}
	if !c.mu.TryLock() {
		t.Fatal("lock held after non-tx boost")
	}
	c.mu.Unlock()
}

func TestBoostInverseOrder(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	var mu1, mu2 sync.Mutex
	var log []string
	_ = tx.Run(func() error {
		tx.Boost(&mu1, func() { log = append(log, "a") }, func() { log = append(log, "-a") })
		tx.Boost(&mu2, func() { log = append(log, "b") }, func() { log = append(log, "-b") })
		tx.Abort()
		return nil
	})
	want := []string{"a", "b", "-b", "-a"}
	if len(log) != 4 {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v (inverses in reverse order)", log, want)
		}
	}
}

// TestBoostSemanticExclusion: two transactions boosting the same lock
// serialize on it, so their eager effects never interleave.
func TestBoostSemanticExclusion(t *testing.T) {
	mgr := NewTxManager()
	c := &boostedCounter{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := mgr.Register()
			for i := 0; i < 200; i++ {
				_ = tx.RunRetry(func() error {
					tx.Boost(&c.mu, func() { c.n++ }, func() { c.n-- })
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if c.n != 800 {
		t.Fatalf("n = %d, want 800", c.n)
	}
}
