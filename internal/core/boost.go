package core

import "sync"

// This file implements the transactional-boosting hook that the paper's
// Composable base class exposes (Section 3.1): a way to incorporate
// lock-based operations into Medley transactions, following Herlihy &
// Koskinen's transactional boosting. A boosted operation acquires a
// semantic lock, performs its (blocking) work eagerly, and registers an
// inverse; if the transaction aborts, inverses run in reverse order before
// the locks release. Using boosted operations forfeits nonblocking
// progress for the enclosing transaction, exactly as the paper notes.

// boostState tracks a transaction's boosted locks and compensation.
type boostState struct {
	locks    []sync.Locker
	inverses []func()
}

// Boost executes a lock-based operation inside the current transaction:
// lock is held until the transaction finishes, apply runs immediately, and
// inverse undoes apply if the transaction aborts. Locks are acquired in
// call order; callers are responsible for a consistent global order across
// transactions (or for using try-lock wrappers) to avoid deadlock.
//
// Outside a transaction, apply simply runs under the lock.
func (tx *Tx) Boost(lock sync.Locker, apply func(), inverse func()) {
	if !tx.InTx() {
		lock.Lock()
		defer lock.Unlock()
		apply()
		return
	}
	if tx.boost == nil {
		tx.boost = &boostState{}
	}
	// A semantic lock is held for the whole transaction; re-boosting
	// through a lock this transaction already owns must not re-acquire it.
	held := false
	for _, l := range tx.boost.locks {
		if l == lock {
			held = true
			break
		}
	}
	if !held {
		lock.Lock()
		tx.boost.locks = append(tx.boost.locks, lock)
	}
	apply()
	tx.boost.inverses = append(tx.boost.inverses, inverse)
}

// settleBoost runs abort compensation (in reverse order) when needed and
// releases every boosted lock. Called from settle.
func (tx *Tx) settleBoost(committed bool) {
	b := tx.boost
	if b == nil {
		return
	}
	if !committed {
		for i := len(b.inverses) - 1; i >= 0; i-- {
			b.inverses[i]()
		}
	}
	for i := len(b.locks) - 1; i >= 0; i-- {
		b.locks[i].Unlock()
	}
	b.locks = b.locks[:0]
	b.inverses = b.inverses[:0]
}
