// Package faultnet is a fault-injecting TCP proxy for chaos testing: it
// sits between an HTTP client and medleyd and applies scripted network
// faults — added latency and jitter, connection resets, a full
// partition (blackhole), and slow half-open closes — so the harness can
// exercise the client's retry policy and the server's idempotency
// window against the failure modes a real network produces.
//
// The proxy is scripted two ways. Standing behavior is a Faults plan
// installed with Set and read atomically by every connection pump, so a
// scenario can flip latency or a partition on and off mid-run. One-shot
// events are injected with triggers: ResetNextResponses arms a counter
// that kills the connection carrying the next upstream response after
// the request was delivered — the canonical "executed but the answer
// died" fault that makes a retry dangerous without deduplication — and
// CutConnections RSTs every live connection at once, as a crashing
// server would.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is a standing fault plan. The zero value forwards traffic
// untouched.
type Faults struct {
	// Latency delays every forwarded chunk, both directions.
	Latency time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter) per chunk.
	Jitter time.Duration
	// Partition stalls all forwarding: established connections stop
	// moving bytes (TCP backpressure reaches the endpoints) and new
	// connections are accepted but never serviced. Clearing it heals the
	// network; stalled chunks resume.
	Partition bool
	// ResetEveryN marks every Nth accepted connection for an abrupt
	// reset once its first request chunk has been forwarded upstream —
	// the request likely executes, the answer never comes back.
	ResetEveryN int
	// SlowClose is how long a killed connection lingers half-open
	// (request delivered, nothing flowing) before the RST is sent.
	SlowClose time.Duration
}

// Stats counts the proxy's activity.
type Stats struct {
	Accepted uint64 // connections accepted
	Resets   uint64 // connections the proxy killed with RST
	Cuts     uint64 // connections severed by CutConnections/Heal (each leg counted)
	Heals    uint64 // times Heal cleared the fault plan
}

// Proxy is one listening fault-injecting proxy. Create with New; all
// methods are safe for concurrent use.
type Proxy struct {
	upstream string
	ln       net.Listener

	faults    atomic.Pointer[Faults]
	respReset atomic.Int64 // armed response-reset count

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	accepted atomic.Uint64
	resets   atomic.Uint64
	cuts     atomic.Uint64
	heals    atomic.Uint64
	wg       sync.WaitGroup
}

// New starts a proxy on listen (use "127.0.0.1:0" for an ephemeral
// port) forwarding to upstream.
func New(listen, upstream string) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen %s: %w", listen, err)
	}
	p := &Proxy{
		upstream: upstream,
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
	}
	p.faults.Store(&Faults{})
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listening address — point the client here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Set installs a new standing fault plan, read by every pump on its
// next chunk.
func (p *Proxy) Set(f Faults) { p.faults.Store(&f) }

// ResetNextResponses arms n one-shot response kills: for each of the
// next n upstream responses (across all connections), the carrying
// connection is reset after the request was forwarded and before any
// response byte reaches the client. The server executed; the client
// cannot know.
func (p *Proxy) ResetNextResponses(n int) { p.respReset.Store(int64(n)) }

// CutConnections resets every live connection at once — the view a
// client has of a server being SIGKILLed. It returns how many
// connections (client and upstream legs counted separately) were cut.
func (p *Proxy) CutConnections() int {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		p.rst(c)
	}
	p.cuts.Add(uint64(len(conns)))
	return len(conns)
}

// Heal ends a fault episode: the standing plan is cleared and every
// connection still stalled under it is cut. Resuming half-dead flows
// would hand bytes to clients that already gave up mid-request, so the
// proxy RSTs them instead — both ends see a clean error and reconnect,
// which is what a healed partition looks like to a pooled HTTP client.
// Connections accepted after Heal are serviced normally.
func (p *Proxy) Heal() {
	p.Set(Faults{})
	p.heals.Add(1)
	p.CutConnections()
}

// Stats snapshots the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted: p.accepted.Load(),
		Resets:   p.resets.Load(),
		Cuts:     p.cuts.Load(),
		Heals:    p.heals.Load(),
	}
}

// Close stops accepting, kills all connections, and waits for pumps to
// drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.CutConnections()
	p.wg.Wait()
	return err
}

func (p *Proxy) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// track registers c for CutConnections/Close; returns false when the
// proxy is already closed.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// rst closes c abruptly: linger 0 turns the close into a TCP RST, so
// the peer sees "connection reset", not a graceful EOF.
func (p *Proxy) rst(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.accepted.Add(1)
		f := p.faults.Load()
		marked := f.ResetEveryN > 0 && n%uint64(f.ResetEveryN) == 0
		p.wg.Add(1)
		go p.serve(client, marked)
	}
}

// serve proxies one client connection to a fresh upstream connection.
func (p *Proxy) serve(client net.Conn, marked bool) {
	defer p.wg.Done()
	if !p.track(client) {
		p.rst(client)
		return
	}
	defer p.untrack(client)

	// Under a partition, hold the connection open but never dial or
	// serve: the client's request vanishes into the hole until its own
	// timeout, exactly like a dropped SYN-ACK path.
	if p.stallWhilePartitioned(client) {
		return
	}

	up, err := net.Dial("tcp", p.upstream)
	if err != nil {
		p.rst(client)
		return
	}
	if !p.track(up) {
		p.rst(client)
		p.rst(up)
		return
	}
	defer p.untrack(up)

	c := &proxyConn{p: p, client: client, up: up, marked: marked}
	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() { defer pumps.Done(); c.pumpRequests() }()
	go func() { defer pumps.Done(); c.pumpResponses() }()
	pumps.Wait()
	_ = client.Close()
	_ = up.Close()
}

// stallWhilePartitioned parks a just-accepted connection while the
// partition holds. It returns true when the connection died (proxy
// closed or peer gave up) before the partition healed.
func (p *Proxy) stallWhilePartitioned(client net.Conn) bool {
	for p.faults.Load().Partition {
		if p.isClosed() {
			p.rst(client)
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// proxyConn is one client↔upstream pair being pumped.
type proxyConn struct {
	p      *Proxy
	client net.Conn
	up     net.Conn
	marked bool

	killed atomic.Bool // one side decided to RST the pair
}

// kill RSTs both sides after the slow-close dwell, once.
func (c *proxyConn) kill() {
	if !c.killed.CompareAndSwap(false, true) {
		return
	}
	if d := c.p.faults.Load().SlowClose; d > 0 {
		time.Sleep(d)
	}
	c.p.resets.Add(1)
	c.p.rst(c.client)
	c.p.rst(c.up)
}

// delayChunk applies the standing per-chunk faults (partition stall,
// latency, jitter) before a chunk is forwarded.
func (c *proxyConn) delayChunk() {
	for c.p.faults.Load().Partition && !c.p.isClosed() && !c.killed.Load() {
		time.Sleep(2 * time.Millisecond)
	}
	f := c.p.faults.Load()
	d := f.Latency
	if f.Jitter > 0 {
		d += rand.N(f.Jitter)
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// pumpRequests forwards client→upstream. On a marked connection the
// first request is delivered and then the pair is killed: each read
// after the first chunk runs under a short deadline, and the idle
// timeout (request fully drained, client now waiting for an answer that
// will never come) triggers the reset.
func (c *proxyConn) pumpRequests() {
	buf := make([]byte, 32<<10)
	sawChunk := false
	for {
		if c.marked && sawChunk {
			_ = c.client.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		}
		n, err := c.client.Read(buf)
		if n > 0 {
			c.delayChunk()
			if c.killed.Load() {
				return
			}
			if _, werr := c.up.Write(buf[:n]); werr != nil {
				return
			}
			sawChunk = true
		}
		if err != nil {
			if c.marked && sawChunk && errors.Is(err, os.ErrDeadlineExceeded) {
				c.kill()
				return
			}
			// EOF from the client: half-close toward the upstream so a
			// streaming request still completes.
			if cw, ok := c.up.(interface{ CloseWrite() error }); ok {
				_ = cw.CloseWrite()
			}
			return
		}
	}
}

// pumpResponses forwards upstream→client. A marked connection never
// forwards a response (the kill races the answer otherwise); an armed
// ResetNextResponses trigger converts the first response byte into a
// kill.
func (c *proxyConn) pumpResponses() {
	buf := make([]byte, 32<<10)
	discard := c.marked
	for {
		n, err := c.up.Read(buf)
		if n > 0 && !discard {
			if c.p.respReset.Add(-1) >= 0 {
				// The request executed upstream; eat the answer and kill
				// the pair so the client must retry blind.
				discard = true
				c.kill()
			} else {
				c.p.respReset.Add(1) // undo the probe decrement
			}
		}
		if n > 0 && !discard {
			c.delayChunk()
			if c.killed.Load() {
				return
			}
			if _, werr := c.client.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if cw, ok := c.client.(interface{ CloseWrite() error }); ok {
				_ = cw.CloseWrite()
			}
			return
		}
	}
}
