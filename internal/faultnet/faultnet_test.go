package faultnet

import (
	"bufio"
	"io"
	"net"
	"testing"
	"time"
)

// echoUpstream starts a TCP server that echoes every byte back, the
// minimal upstream for observing what the proxy lets through.
func echoUpstream(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(c)
		}
	}()
	return ln.Addr().String()
}

func newProxy(t *testing.T) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:0", echoUpstream(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// roundTrip writes one line and reads the echo under deadline.
func roundTrip(c net.Conn, line string, deadline time.Duration) (string, error) {
	if _, err := c.Write([]byte(line + "\n")); err != nil {
		return "", err
	}
	_ = c.SetReadDeadline(time.Now().Add(deadline))
	defer c.SetReadDeadline(time.Time{})
	return bufio.NewReader(c).ReadString('\n')
}

// TestPassThroughAndLatency pins the transparent path and the standing
// latency fault: bytes arrive intact, and each direction's chunks wait
// at least the configured latency.
func TestPassThroughAndLatency(t *testing.T) {
	p := newProxy(t)
	c := dialProxy(t, p)
	if got, err := roundTrip(c, "hello", 2*time.Second); err != nil || got != "hello\n" {
		t.Fatalf("clean roundtrip = %q, %v", got, err)
	}

	p.Set(Faults{Latency: 15 * time.Millisecond})
	start := time.Now()
	if got, err := roundTrip(c, "delayed", 2*time.Second); err != nil || got != "delayed\n" {
		t.Fatalf("delayed roundtrip = %q, %v", got, err)
	}
	// Latency applies per chunk in both directions: 2 x 15ms minimum.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("roundtrip took %v, want >= 30ms with 15ms per-chunk latency", elapsed)
	}
	if st := p.Stats(); st.Accepted != 1 {
		t.Errorf("accepted = %d, want 1", st.Accepted)
	}
}

// TestResetEveryN pins the marked-connection fault: with every
// connection marked, the request is forwarded upstream but the answer
// never returns — the connection dies instead.
func TestResetEveryN(t *testing.T) {
	p := newProxy(t)
	p.Set(Faults{ResetEveryN: 1})
	c := dialProxy(t, p)
	if _, err := roundTrip(c, "doomed", 2*time.Second); err == nil {
		t.Fatal("marked connection delivered a response")
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Resets == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reset never counted")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResetNextResponses pins the one-shot trigger: the armed response
// is eaten and its connection killed, the next connection is clean.
func TestResetNextResponses(t *testing.T) {
	p := newProxy(t)
	a := dialProxy(t, p)
	if got, err := roundTrip(a, "warm", 2*time.Second); err != nil || got != "warm\n" {
		t.Fatalf("warmup roundtrip = %q, %v", got, err)
	}

	p.ResetNextResponses(1)
	if _, err := roundTrip(a, "eaten", 2*time.Second); err == nil {
		t.Fatal("armed response reached the client")
	}
	b := dialProxy(t, p)
	if got, err := roundTrip(b, "fresh", 2*time.Second); err != nil || got != "fresh\n" {
		t.Fatalf("post-trigger roundtrip = %q, %v (trigger not one-shot?)", got, err)
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Errorf("resets = %d, want 1", st.Resets)
	}
}

// TestPartitionStallsAndHeals pins the blackhole: an established
// connection stops moving bytes while partitioned, and the stalled
// chunk resumes — not lost — when the partition clears.
func TestPartitionStallsAndHeals(t *testing.T) {
	p := newProxy(t)
	c := dialProxy(t, p)
	if got, err := roundTrip(c, "before", 2*time.Second); err != nil || got != "before\n" {
		t.Fatalf("pre-partition roundtrip = %q, %v", got, err)
	}

	p.Set(Faults{Partition: true})
	if got, err := roundTrip(c, "held", 60*time.Millisecond); err == nil {
		t.Fatalf("read %q through a partition", got)
	}

	p.Set(Faults{})
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, err := bufio.NewReader(c).ReadString('\n')
	if err != nil || got != "held\n" {
		t.Fatalf("healed read = %q, %v (stalled chunk lost?)", got, err)
	}
}

// TestCutConnections pins the crash view: every live connection dies at
// once, and new connections still work afterwards.
func TestCutConnections(t *testing.T) {
	p := newProxy(t)
	c := dialProxy(t, p)
	if _, err := roundTrip(c, "alive", 2*time.Second); err != nil {
		t.Fatal(err)
	}

	p.CutConnections()
	if _, err := roundTrip(c, "dead", 2*time.Second); err == nil {
		t.Fatal("cut connection still answered")
	}

	c2 := dialProxy(t, p)
	if got, err := roundTrip(c2, "after", 2*time.Second); err != nil || got != "after\n" {
		t.Fatalf("post-cut roundtrip = %q, %v", got, err)
	}
}

// TestPartitionHealCutsInFlight pins Heal's contract, the harness's
// partition-recovery primitive: connections in flight when the
// partition heals are CUT (their clients already gave up; resuming
// them would deliver answers nobody is waiting for), brand-new
// connections are serviced normally immediately after Heal, and Stats
// counts both phases — the cut legs and the post-heal accepts.
func TestPartitionHealCutsInFlight(t *testing.T) {
	p := newProxy(t)
	c := dialProxy(t, p)
	if got, err := roundTrip(c, "before", 2*time.Second); err != nil || got != "before\n" {
		t.Fatalf("pre-partition roundtrip = %q, %v", got, err)
	}
	pre := p.Stats()

	p.Set(Faults{Partition: true})
	// The write vanishes into the hole: nothing comes back.
	if got, err := roundTrip(c, "held", 60*time.Millisecond); err == nil {
		t.Fatalf("read %q through a partition", got)
	}

	p.Heal()

	// Phase 1: the in-flight connection was cut, not resumed. The read
	// fails fast with a reset/EOF instead of hanging to its deadline.
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if got, err := bufio.NewReader(c).ReadString('\n'); err == nil {
		t.Fatalf("stalled connection resumed after Heal: read %q, want cut", got)
	}

	// Phase 2: a fresh connection is serviced normally.
	c2 := dialProxy(t, p)
	if got, err := roundTrip(c2, "after", 2*time.Second); err != nil || got != "after\n" {
		t.Fatalf("post-heal roundtrip = %q, %v", got, err)
	}

	st := p.Stats()
	if st.Heals != pre.Heals+1 {
		t.Errorf("Heals = %d, want %d", st.Heals, pre.Heals+1)
	}
	if st.Cuts <= pre.Cuts {
		t.Errorf("Cuts = %d, want > %d (in-flight legs severed)", st.Cuts, pre.Cuts)
	}
	if st.Accepted <= pre.Accepted {
		t.Errorf("Accepted = %d, want > %d (post-heal connection counted)", st.Accepted, pre.Accepted)
	}
}
