// Quickstart: the paper's Figure 3 — transfer money between accounts held
// in two different lock-free hash tables, atomically, with Medley.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"medley"
)

var errInsufficient = errors.New("insufficient funds")

// transfer moves v from account a1 in ht1 to account a2 in ht2 as one
// strictly serializable transaction (the paper's doTx, Figure 3).
func transfer(tx *medley.Tx, ht1, ht2 *medley.HashMap[int], v int, a1, a2 uint64) error {
	return tx.RunRetry(func() error {
		v1, ok := ht1.Get(tx, a1)
		if !ok || v1 < v {
			return errInsufficient // business abort: rolled back, not retried
		}
		v2, _ := ht2.Get(tx, a2)
		ht1.Put(tx, a1, v1-v)
		ht2.Put(tx, a2, v+v2)
		return nil
	})
}

func main() {
	mgr := medley.NewTxManager()
	checking := medley.NewHashMap[int](mgr, 1<<10)
	savings := medley.NewHashMap[int](mgr, 1<<10)

	// Non-transactional use: pass a nil *Tx.
	checking.Put(nil, 1, 100)

	tx := mgr.Register() // one Tx per goroutine
	if err := transfer(tx, checking, savings, 30, 1, 1); err != nil {
		log.Fatalf("transfer failed: %v", err)
	}
	c, _ := checking.Get(nil, 1)
	s, _ := savings.Get(nil, 1)
	fmt.Printf("after transfer: checking=%d savings=%d\n", c, s)

	if err := transfer(tx, checking, savings, 1000, 1, 1); !errors.Is(err, errInsufficient) {
		log.Fatalf("overdraft should fail, got %v", err)
	}
	c, _ = checking.Get(nil, 1)
	s, _ = savings.Get(nil, 1)
	fmt.Printf("after rejected overdraft: checking=%d savings=%d\n", c, s)

	st := mgr.Stats()
	fmt.Printf("transactions: %d begun, %d committed, %d aborted\n",
		st.Begins, st.Commits, st.Aborts)
}
