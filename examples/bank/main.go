// Bank: a concurrent stress demonstration of Medley's isolation. Many
// goroutines transfer between accounts spread across a skiplist and a BST
// while auditors take transactional snapshots; the total balance is
// invariant in every committed snapshot and at the end.
//
//	go run ./examples/bank
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"medley"
)

const (
	nAccounts = 64
	initial   = 1000
	transfers = 2000
	workers   = 4
)

var errInsufficient = errors.New("insufficient funds")

func main() {
	mgr := medley.NewTxManager()
	// Half the accounts live in a skiplist, half in a BST: transactions
	// span heterogeneous structures.
	skip := medley.NewSkiplist[int](mgr)
	bst := medley.NewBST[int](mgr)
	get := func(tx *medley.Tx, a uint64) (int, bool) {
		if a%2 == 0 {
			return skip.Get(tx, a)
		}
		return bst.Get(tx, a)
	}
	put := func(tx *medley.Tx, a uint64, v int) {
		if a%2 == 0 {
			skip.Put(tx, a, v)
		} else {
			bst.Put(tx, a, v)
		}
	}
	for a := uint64(0); a < nAccounts; a++ {
		put(nil, a, initial)
	}

	var wg, auditWG sync.WaitGroup
	var committed, rejected atomic.Int64
	var stop atomic.Bool

	// Auditors: transactional read-only snapshots of every account.
	var torn atomic.Int64
	for r := 0; r < 2; r++ {
		auditWG.Add(1)
		go func() {
			defer auditWG.Done()
			tx := mgr.Register()
			for !stop.Load() {
				total := 0
				err := tx.Run(func() error {
					total = 0
					for a := uint64(0); a < nAccounts; a++ {
						v, ok := get(tx, a)
						if !ok {
							return fmt.Errorf("account %d missing", a)
						}
						total += v
					}
					return nil
				})
				if err == nil && total != nAccounts*initial {
					torn.Add(1)
				}
			}
		}()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfers; i++ {
				from := uint64(rng.Intn(nAccounts))
				to := uint64(rng.Intn(nAccounts))
				if from == to {
					continue
				}
				amt := rng.Intn(50) + 1
				err := tx.RunRetry(func() error {
					vf, ok := get(tx, from)
					if !ok || vf < amt {
						return errInsufficient
					}
					vt, _ := get(tx, to)
					put(tx, from, vf-amt)
					put(tx, to, vt+amt)
					return nil
				})
				switch {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, errInsufficient):
					rejected.Add(1)
				default:
					log.Fatalf("unexpected error: %v", err)
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	stop.Store(true)
	auditWG.Wait()

	total := 0
	for a := uint64(0); a < nAccounts; a++ {
		v, ok := get(nil, a)
		if !ok || v < 0 {
			log.Fatalf("account %d corrupted: %d,%v", a, v, ok)
		}
		total += v
	}
	fmt.Printf("committed=%d rejected=%d torn-snapshots=%d\n",
		committed.Load(), rejected.Load(), torn.Load())
	fmt.Printf("total balance: %d (expected %d)\n", total, nAccounts*initial)
	if total != nAccounts*initial || torn.Load() != 0 {
		log.Fatal("INVARIANT VIOLATED")
	}
	fmt.Println("conservation invariant holds ✓")
}
