// TPC-C mini: the paper's Figure 9 workload (newOrder + payment, 1:1) run
// briefly on every backend, printing relative throughput — a small-scale
// live rendition of the figure.
//
//	go run ./examples/tpccmini
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/montage"
	"medley/internal/onefile"
	"medley/internal/tpcc"
)

func main() {
	scale := tpcc.Scale{Warehouses: 2, Districts: 4, Customers: 30, Items: 300}
	const threads = 4
	const duration = 500 * time.Millisecond

	type entry struct {
		name string
		mk   func() tpcc.Backend
	}
	backends := []entry{
		{"Medley", func() tpcc.Backend { return tpcc.NewMedleyBackend() }},
		{"txMontage", func() tpcc.Backend {
			return tpcc.NewMontageBackend(montage.NewSystem(montage.Config{
				RegionWords:      1 << 24,
				WriteBackLatency: 300 * time.Nanosecond,
				FenceLatency:     100 * time.Nanosecond,
				StoreLatency:     60 * time.Nanosecond,
			}))
		}},
		{"OneFile", func() tpcc.Backend { return tpcc.NewOneFileBackend(onefile.New(), "OneFile") }},
		{"TDSL", func() tpcc.Backend { return tpcc.NewTDSLBackend() }},
	}

	fmt.Printf("TPC-C subset (newOrder:payment 1:1), %d warehouses, %d threads, %v each\n\n",
		scale.Warehouses, threads, duration)
	var medleyTput float64
	for _, be := range backends {
		b := be.mk()
		if err := tpcc.Load(b, scale); err != nil {
			log.Fatalf("load %s: %v", be.name, err)
		}
		var stopAdv func()
		if mb, ok := b.(*tpcc.MontageBackend); ok {
			stopAdv = mb.StartAdvancer(20 * time.Millisecond)
		}
		var txns atomic.Uint64
		var stop atomic.Bool
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				d := tpcc.NewDriver(b, scale, seed)
				var local uint64
				for !stop.Load() {
					if _, err := d.Step(); err != nil {
						log.Fatalf("step: %v", err)
					}
					local++
				}
				txns.Add(local)
			}(int64(g)*31 + 5)
		}
		begin := time.Now()
		time.Sleep(duration)
		stop.Store(true)
		wg.Wait()
		if stopAdv != nil {
			stopAdv()
		}
		tput := float64(txns.Load()) / time.Since(begin).Seconds()
		if be.name == "Medley" {
			medleyTput = tput
		}
		rel := ""
		if medleyTput > 0 && be.name != "Medley" {
			rel = fmt.Sprintf("  (Medley is %.1fx)", medleyTput/tput)
		}
		fmt.Printf("  %-10s %10.0f txn/s%s\n", be.name, tput, rel)
	}
}
