// Durable: txMontage end to end — ACID transactions over simulated
// persistent memory, with a crash in the middle. Transactions committed in
// a persisted epoch survive; the unsynced suffix is lost as a group,
// exactly the buffered durable strict serializability of the paper's
// Section 4.
//
//	go run ./examples/durable
package main

import (
	"fmt"
	"log"

	"medley"
	"medley/internal/structures/mhash"
)

func main() {
	sys := medley.NewMontage(medley.MontageConfig{RegionWords: 1 << 18})
	mgr := medley.NewTxManager()
	idx := mhash.NewMap[medley.PEntry[uint64]](mgr, 256)
	store := medley.NewPStore[uint64](sys, idx, medley.U64Codec())

	tx := mgr.Register()
	h := sys.Wrap(tx) // txMontage: epoch validation joins the MCNS read set

	// Two durable transactions.
	must(tx.RunRetry(func() error {
		store.Put(h, 1, 100)
		store.Put(h, 2, 200)
		return nil
	}))
	must(tx.RunRetry(func() error {
		v1, _ := store.Get(h, 1)
		store.Put(h, 1, v1-50)
		store.Put(h, 3, 50)
		return nil
	}))
	sys.Sync() // make everything so far durable

	// A third transaction commits in DRAM but its epoch never persists.
	must(tx.RunRetry(func() error {
		store.Put(h, 4, 400)
		store.Put(h, 1, 0)
		return nil
	}))

	fmt.Println("pre-crash state (DRAM view):")
	dump(store, h)

	rec := sys.CrashAndRecover()
	fmt.Printf("\n-- CRASH -- recovered %d payloads from persisted epoch %d\n\n",
		len(rec), sys.PersistedEpoch())

	// Post-crash: fresh threads, fresh index, rebuilt from payloads.
	mgr2 := medley.NewTxManager()
	idx2 := mhash.NewMap[medley.PEntry[uint64]](mgr2, 256)
	store2 := medley.RebuildPStore(sys, idx2, medley.U64Codec(), rec)
	h2 := sys.Wrap(mgr2.Register())

	fmt.Println("post-recovery state:")
	dump(store2, h2)

	if v, ok := store2.Get(h2, 1); !ok || v != 50 {
		log.Fatalf("expected key 1 = 50 (synced state), got %d,%v", v, ok)
	}
	if _, ok := store2.Get(h2, 4); ok {
		log.Fatal("unsynced transaction leaked across the crash")
	}
	fmt.Println("\nbuffered durable strict serializability holds ✓")
}

func dump(store *medley.PStore[uint64], h *medley.MontageHandle) {
	for k := uint64(1); k <= 4; k++ {
		if v, ok := store.Get(h, k); ok {
			fmt.Printf("  key %d = %d\n", k, v)
		} else {
			fmt.Printf("  key %d = <absent>\n", k)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
