// Command faultnetd runs the fault-injecting TCP proxy (internal/faultnet)
// as a standalone process, for chaos runs where the client and medleyd
// live in separate processes (CI smoke tests, manual experiments).
//
// Usage:
//
//	faultnetd -listen 127.0.0.1:7655 -upstream 127.0.0.1:7654 \
//	    -latency 2ms -jitter 3ms -reset-every 10
//
// The standing fault plan is fixed at startup; in-process chaos runs use
// the faultnet API directly for mid-run scripting.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"medley/internal/faultnet"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7655", "address to listen on (clients connect here)")
		upstream   = flag.String("upstream", "127.0.0.1:7654", "medleyd address to forward to")
		latency    = flag.Duration("latency", 0, "added delay per forwarded chunk, both directions")
		jitter     = flag.Duration("jitter", 0, "uniform extra delay in [0, jitter) per chunk")
		resetEvery = flag.Int("reset-every", 0, "reset every Nth connection after its first request (0 disables)")
		slowClose  = flag.Duration("slow-close", 0, "half-open dwell before an injected reset's RST")
	)
	flag.Parse()

	p, err := faultnet.New(*listen, *upstream)
	if err != nil {
		log.Fatalf("faultnetd: %v", err)
	}
	p.Set(faultnet.Faults{
		Latency:     *latency,
		Jitter:      *jitter,
		ResetEveryN: *resetEvery,
		SlowClose:   *slowClose,
	})
	log.Printf("faultnetd: %s -> %s (latency=%v jitter=%v reset-every=%d slow-close=%v)",
		p.Addr(), *upstream, *latency, *jitter, *resetEvery, *slowClose)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("faultnetd: shutting down")
	_ = p.Close()
	// Give pumps' RSTs a moment to land before the process exits.
	time.Sleep(10 * time.Millisecond)
	st := p.Stats()
	log.Printf("faultnetd: %d connections, %d injected resets", st.Accepted, st.Resets)
}
