// Command bench-schema validates BENCH_*.json benchmark reports against
// the committed schema (testdata/bench_schema.json), failing on drift:
// a report containing key paths the schema does not know, or missing
// required paths, exits non-zero. CI runs it over freshly generated
// reports so the JSON contract of internal/harness/report.go cannot
// change without updating the schema in the same commit.
//
// With -fail-on-violations it additionally fails when any recoverable
// crash record reports durability violations, when any consistency block
// reports failed domain invariants (the TPC-C clause 3.3.2 classes),
// when a final-check block reports live state diverging from the
// journaled model, or when a replica block reports the surviving
// replica diverging from the acknowledged-write model — which is what
// turns the crash, TPC-C and chaos soaks into correctness gates.
//
// With -alloc-budget it enforces the committed allocation budget
// (testdata/alloc_budget.json) against the reports' memory blocks: the
// budgeted system's measured allocs/op must stay under an absolute ceiling
// and under (1 - min_reduction) of the named baseline system at the same
// thread count — the regression gate for the allocation-free hot path.
//
// With -fastpath-budget it enforces the committed commit fast-path budget
// (testdata/fastpath_budget.json): at every thread count at or above the
// budget's floor, the fast-path system must beat its -fastpaths=off
// baseline by the required margin, its fastpath_share must show the fast
// paths are actually taken, and its allocs/op must stay under the
// read-only allocation ceiling.
//
// With -groupcommit-budget it enforces the committed group-commit budget
// (testdata/groupcommit_budget.json) the same way: the grouped system
// must beat its -groupcommit=off baseline by the required margin at every
// thread count at or above the floor, and its group_share must show that
// a non-trivial fraction of logical commits actually rode inside merged
// groups.
//
// With -faults-budget it enforces the committed fault-tolerance budget
// (testdata/faults_budget.json) against the reports' service blocks: the
// chaos run must have survived the required number of restarts, kept
// availability above the floor, completed enough transactions for the
// gate to mean anything, and reported zero wire-level durability
// violations (the recovery block of chaos records).
//
// With -replica-budget it enforces the committed replication budget
// (testdata/replica_budget.json) against the reports' replica blocks: the
// chaos run must have performed the required number of leader kill +
// promotion cycles (or partition episodes), kept availability above the
// floor, completed enough transactions to judge, and reported zero
// divergence violations outside the enumerated-and-tainted promotion
// losses.
//
//	bench-schema -schema testdata/bench_schema.json BENCH_*.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"medley/internal/harness"
)

var (
	schemaFlag     = flag.String("schema", "testdata/bench_schema.json", "committed schema file")
	violationsFlag = flag.Bool("fail-on-violations", false,
		"also fail on durability, consistency or final-state violations in any record")
	budgetFlag = flag.String("alloc-budget", "",
		"also enforce this allocation-budget file against the reports' memory blocks")
	fastpathFlag = flag.String("fastpath-budget", "",
		"also enforce this fast-path budget file against the reports' fastpath blocks")
	groupcommitFlag = flag.String("groupcommit-budget", "",
		"also enforce this group-commit budget file against the reports' fastpath blocks")
	faultsFlag = flag.String("faults-budget", "",
		"also enforce this fault-tolerance budget file against the reports' service blocks")
	replicaFlag = flag.String("replica-budget", "",
		"also enforce this replication budget file against the reports' replica blocks")
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: bench-schema [-schema file] [-fail-on-violations] report.json...")
		return 2
	}
	schema, err := harness.LoadSchema(*schemaFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	failed := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		paths, err := harness.CanonicalPaths(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed = true
			continue
		}
		for _, msg := range schema.Diff(paths) {
			fmt.Fprintf(os.Stderr, "%s: schema drift: %s\n", path, msg)
			failed = true
		}
		if *violationsFlag {
			for _, msg := range durabilityViolations(data) {
				fmt.Fprintf(os.Stderr, "%s: %s\n", path, msg)
				failed = true
			}
		}
		if *budgetFlag != "" {
			budget, err := loadBudget(*budgetFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			for _, msg := range budget.violations(data) {
				fmt.Fprintf(os.Stderr, "%s: alloc budget: %s\n", path, msg)
				failed = true
			}
		}
		if *fastpathFlag != "" {
			budget, err := loadFastpathBudget(*fastpathFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			for _, msg := range budget.violations(data) {
				fmt.Fprintf(os.Stderr, "%s: fastpath budget: %s\n", path, msg)
				failed = true
			}
		}
		if *groupcommitFlag != "" {
			budget, err := loadGroupcommitBudget(*groupcommitFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			for _, msg := range budget.violations(data) {
				fmt.Fprintf(os.Stderr, "%s: groupcommit budget: %s\n", path, msg)
				failed = true
			}
		}
		if *faultsFlag != "" {
			budget, err := loadFaultsBudget(*faultsFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			for _, msg := range budget.violations(data) {
				fmt.Fprintf(os.Stderr, "%s: faults budget: %s\n", path, msg)
				failed = true
			}
		}
		if *replicaFlag != "" {
			budget, err := loadReplicaBudget(*replicaFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			for _, msg := range budget.violations(data) {
				fmt.Fprintf(os.Stderr, "%s: replica budget: %s\n", path, msg)
				failed = true
			}
		}
	}
	if failed {
		return 1
	}
	fmt.Printf("bench-schema: %d report(s) OK\n", flag.NArg())
	return 0
}

// durabilityViolations scans a report for records whose verifiers counted
// violations: recoverable crash records with durability violations,
// consistency blocks with failed domain invariants, final-check blocks
// whose live state diverged from the journaled model, and replica blocks
// whose surviving replica diverged from the acknowledged-write model.
func durabilityViolations(data []byte) []string {
	var doc struct {
		Results []struct {
			System      string                     `json:"system"`
			Phase       string                     `json:"phase"`
			Threads     int                        `json:"threads"`
			Recovery    *harness.RecoveryRecord    `json:"recovery"`
			Consistency *harness.ConsistencyRecord `json:"consistency"`
			FinalCheck  *harness.FinalCheckRecord  `json:"final_check"`
			Replica     *harness.ReplicaRecord     `json:"replica"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{err.Error()}
	}
	var out []string
	for _, r := range doc.Results {
		if rec := r.Recovery; rec != nil && rec.Recoverable && rec.Violations > 0 {
			out = append(out, fmt.Sprintf(
				"%s threads=%d: %d durability violations (missing=%d mismatched=%d leaked=%d)",
				r.System, r.Threads, rec.Violations, rec.MissingWrites,
				rec.MismatchedWrites, rec.LeakedWrites))
		}
		if c := r.Consistency; c != nil && c.Checked && c.Violations > 0 {
			classes := ""
			for i, cc := range c.Classes {
				if i > 0 {
					classes += " "
				}
				classes += fmt.Sprintf("%s=%d", cc.Class, cc.Count)
			}
			out = append(out, fmt.Sprintf(
				"%s threads=%d phase=%s: %d consistency violations (%s)",
				r.System, r.Threads, r.Phase, c.Violations, classes))
		}
		if fc := r.FinalCheck; fc != nil && fc.Checked && fc.Violations > 0 {
			out = append(out, fmt.Sprintf(
				"%s threads=%d: %d final-state violations (missing=%d mismatched=%d leaked=%d)",
				r.System, r.Threads, fc.Violations, fc.MissingWrites,
				fc.MismatchedWrites, fc.LeakedWrites))
		}
		if rp := r.Replica; rp != nil && rp.Violations > 0 {
			out = append(out, fmt.Sprintf(
				"%s threads=%d: %d replica divergence violations (missing=%d stale=%d mismatched=%d leaked=%d)",
				r.System, r.Threads, rp.Violations, rp.MissingKeys,
				rp.StaleKeys, rp.MismatchedKeys, rp.LeakedKeys))
		}
	}
	return out
}

// allocBudget is the committed allocation budget (testdata/
// alloc_budget.json): the regression contract for the recycling arenas.
type allocBudget struct {
	// Scenario restricts the check to reports of this scenario ("" = any).
	Scenario string `json:"scenario"`
	// System is the budgeted (pooled) system; its measured records must
	// satisfy both bounds below.
	System string `json:"system"`
	// Baseline is the unpooled comparison system; "" skips the relative
	// check.
	Baseline string `json:"baseline"`
	// MaxAllocsPerOp is the absolute ceiling on the budgeted system's
	// measured allocs/op.
	MaxAllocsPerOp float64 `json:"max_allocs_per_op"`
	// MinReduction requires System's allocs/op <= (1-MinReduction) x
	// Baseline's at the same thread count (0.40 = at least 40% fewer).
	MinReduction float64 `json:"min_reduction"`
}

func loadBudget(path string) (allocBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return allocBudget{}, err
	}
	var b allocBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return allocBudget{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.System == "" {
		return allocBudget{}, fmt.Errorf("%s: budget names no system", path)
	}
	return b, nil
}

// fastpathBudget is the committed commit fast-path budget
// (testdata/fastpath_budget.json): the regression contract for the
// read-only/single-write commit elision. It gates the committed
// BENCH_readmostly.json — deterministic inputs, so the check is exact —
// rather than a freshly measured run.
type fastpathBudget struct {
	// Scenario restricts the check to reports of this scenario ("" = any);
	// reports of other scenarios pass vacuously.
	Scenario string `json:"scenario"`
	// Phase selects the records to judge ("" = "measured").
	Phase string `json:"phase"`
	// System is the fast-path system; Baseline the -fastpaths=off
	// configuration it must beat.
	System   string `json:"system"`
	Baseline string `json:"baseline"`
	// MinThreads: the speedup must hold at every thread count >= this, and
	// at least one such record must exist (the gate cannot pass vacuously).
	MinThreads int `json:"min_threads"`
	// MinSpeedup requires System's throughput >= (1+MinSpeedup) x
	// Baseline's at the same thread count (0.15 = at least 15% faster).
	MinSpeedup float64 `json:"min_speedup"`
	// MinFastpathShare is the floor on System's fastpath_share — the
	// fraction of commits that actually skipped the handshake. A fast path
	// nothing takes is a dead gate.
	MinFastpathShare float64 `json:"min_fastpath_share"`
	// MaxAllocsPerOp is the absolute ceiling on System's allocs/op over
	// the judged records: the read-only allocation budget.
	MaxAllocsPerOp float64 `json:"max_allocs_per_op"`
}

func loadFastpathBudget(path string) (fastpathBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return fastpathBudget{}, err
	}
	var b fastpathBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return fastpathBudget{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.System == "" || b.Baseline == "" {
		return fastpathBudget{}, fmt.Errorf("%s: budget must name system and baseline", path)
	}
	return b, nil
}

// violations checks one report against the fast-path budget.
func (b fastpathBudget) violations(data []byte) []string {
	phase := b.Phase
	if phase == "" {
		phase = "measured"
	}
	var doc struct {
		Scenario string `json:"scenario"`
		Results  []struct {
			System   string                  `json:"system"`
			Phase    string                  `json:"phase"`
			Threads  int                     `json:"threads"`
			TxnSec   float64                 `json:"throughput_txn_per_sec"`
			Memory   *harness.MemoryRecord   `json:"memory"`
			Fastpath *harness.FastpathRecord `json:"fastpath"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{err.Error()}
	}
	if b.Scenario != "" && doc.Scenario != b.Scenario {
		return nil
	}
	type measured struct {
		threads  int
		txnSec   float64
		allocs   float64
		hasMem   bool
		share    float64
		hasShare bool
	}
	var sys []measured
	baseline := map[int]float64{} // threads -> baseline txn/s
	for _, r := range doc.Results {
		if r.Phase != phase {
			continue
		}
		switch r.System {
		case b.System:
			m := measured{threads: r.Threads, txnSec: r.TxnSec}
			if r.Memory != nil {
				m.allocs, m.hasMem = r.Memory.AllocsPerOp, true
			}
			if r.Fastpath != nil {
				m.share, m.hasShare = r.Fastpath.FastpathShare, true
			}
			sys = append(sys, m)
		case b.Baseline:
			baseline[r.Threads] = r.TxnSec
		}
	}
	if len(sys) == 0 {
		return []string{fmt.Sprintf("no %q records for system %q", phase, b.System)}
	}
	var out []string
	judged := 0
	for _, m := range sys {
		if b.MinFastpathShare > 0 {
			if !m.hasShare {
				out = append(out, fmt.Sprintf("%s threads=%d: no fastpath block", b.System, m.threads))
			} else if m.share < b.MinFastpathShare {
				out = append(out, fmt.Sprintf("%s threads=%d: fastpath share %.2f below floor %.2f",
					b.System, m.threads, m.share, b.MinFastpathShare))
			}
		}
		if b.MaxAllocsPerOp > 0 && m.hasMem && m.allocs > b.MaxAllocsPerOp {
			out = append(out, fmt.Sprintf("%s threads=%d: %.3f allocs/op exceeds ceiling %.3f",
				b.System, m.threads, m.allocs, b.MaxAllocsPerOp))
		}
		if m.threads < b.MinThreads {
			continue
		}
		judged++
		base, ok := baseline[m.threads]
		if !ok {
			out = append(out, fmt.Sprintf("no baseline %q record at threads=%d", b.Baseline, m.threads))
			continue
		}
		if limit := (1 + b.MinSpeedup) * base; m.txnSec < limit {
			out = append(out, fmt.Sprintf(
				"%s threads=%d: %.0f txn/s not %.0f%% above baseline %.0f (limit %.0f)",
				b.System, m.threads, m.txnSec, 100*b.MinSpeedup, base, limit))
		}
	}
	if judged == 0 {
		out = append(out, fmt.Sprintf("no %q records for %q at threads >= %d (gate would pass vacuously)",
			phase, b.System, b.MinThreads))
	}
	return out
}

// groupcommitBudget is the committed group-commit budget
// (testdata/groupcommit_budget.json): the regression contract for merged
// group commits. It gates the committed BENCH_groupcommit.json the same
// way the fast-path budget gates BENCH_readmostly.json: at every thread
// count at or above the floor, the grouped system must beat its
// -groupcommit=off baseline by the required margin, and its group_share
// must show the merges are actually happening — a group-commit path
// nothing takes is a dead gate.
type groupcommitBudget struct {
	// Scenario restricts the check to reports of this scenario ("" = any);
	// reports of other scenarios pass vacuously.
	Scenario string `json:"scenario"`
	// Phase selects the records to judge ("" = "measured").
	Phase string `json:"phase"`
	// System is the grouped system; Baseline the -groupcommit=off
	// configuration it must beat.
	System   string `json:"system"`
	Baseline string `json:"baseline"`
	// MinThreads: the speedup must hold at every thread count >= this, and
	// at least one such record must exist (the gate cannot pass vacuously).
	MinThreads int `json:"min_threads"`
	// MinSpeedup requires System's throughput >= (1+MinSpeedup) x
	// Baseline's at the same thread count (0.15 = at least 15% faster).
	MinSpeedup float64 `json:"min_speedup"`
	// MinGroupShare is the floor on System's group_share — the fraction of
	// logical commits that actually rode inside merged groups.
	MinGroupShare float64 `json:"min_group_share"`
}

func loadGroupcommitBudget(path string) (groupcommitBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return groupcommitBudget{}, err
	}
	var b groupcommitBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return groupcommitBudget{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.System == "" || b.Baseline == "" {
		return groupcommitBudget{}, fmt.Errorf("%s: budget must name system and baseline", path)
	}
	return b, nil
}

// violations checks one report against the group-commit budget.
func (b groupcommitBudget) violations(data []byte) []string {
	phase := b.Phase
	if phase == "" {
		phase = "measured"
	}
	var doc struct {
		Scenario string `json:"scenario"`
		Results  []struct {
			System   string                  `json:"system"`
			Phase    string                  `json:"phase"`
			Threads  int                     `json:"threads"`
			TxnSec   float64                 `json:"throughput_txn_per_sec"`
			Fastpath *harness.FastpathRecord `json:"fastpath"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{err.Error()}
	}
	if b.Scenario != "" && doc.Scenario != b.Scenario {
		return nil
	}
	type measured struct {
		threads  int
		txnSec   float64
		share    float64
		hasShare bool
	}
	var sys []measured
	baseline := map[int]float64{} // threads -> baseline txn/s
	for _, r := range doc.Results {
		if r.Phase != phase {
			continue
		}
		switch r.System {
		case b.System:
			m := measured{threads: r.Threads, txnSec: r.TxnSec}
			if r.Fastpath != nil {
				m.share, m.hasShare = r.Fastpath.GroupShare, true
			}
			sys = append(sys, m)
		case b.Baseline:
			baseline[r.Threads] = r.TxnSec
		}
	}
	if len(sys) == 0 {
		return []string{fmt.Sprintf("no %q records for system %q", phase, b.System)}
	}
	var out []string
	judged := 0
	for _, m := range sys {
		if b.MinGroupShare > 0 {
			if !m.hasShare {
				out = append(out, fmt.Sprintf("%s threads=%d: no fastpath block", b.System, m.threads))
			} else if m.share < b.MinGroupShare {
				out = append(out, fmt.Sprintf("%s threads=%d: group share %.2f below floor %.2f",
					b.System, m.threads, m.share, b.MinGroupShare))
			}
		}
		if m.threads < b.MinThreads {
			continue
		}
		judged++
		base, ok := baseline[m.threads]
		if !ok {
			out = append(out, fmt.Sprintf("no baseline %q record at threads=%d", b.Baseline, m.threads))
			continue
		}
		if limit := (1 + b.MinSpeedup) * base; m.txnSec < limit {
			out = append(out, fmt.Sprintf(
				"%s threads=%d: %.0f txn/s not %.0f%% above baseline %.0f (limit %.0f)",
				b.System, m.threads, m.txnSec, 100*b.MinSpeedup, base, limit))
		}
	}
	if judged == 0 {
		out = append(out, fmt.Sprintf("no %q records for %q at threads >= %d (gate would pass vacuously)",
			phase, b.System, b.MinThreads))
	}
	return out
}

// faultsBudget is the committed fault-tolerance budget
// (testdata/faults_budget.json): the regression contract for the chaos
// service runs. It gates the committed BENCH_faults.json — a chaos
// record that survived too few restarts, dipped below the availability
// floor, completed too little work to judge, or reported wire-level
// durability violations fails the build.
type faultsBudget struct {
	// Scenario restricts the check to reports of this scenario ("" = any);
	// reports of other scenarios pass vacuously.
	Scenario string `json:"scenario"`
	// Phase selects the records to judge ("" = "chaos").
	Phase string `json:"phase"`
	// System is the budgeted system; "" judges every chaos record.
	System string `json:"system"`
	// MinRestarts: each judged record must have survived at least this many
	// kill/recover/restart cycles (a chaos gate with no restarts is dead).
	MinRestarts int `json:"min_restarts"`
	// MinAvailability is the floor on completed / (completed + errors +
	// expired + in-doubt).
	MinAvailability float64 `json:"min_availability"`
	// MinCompleted is the floor on completed transactions, so the gate
	// cannot pass on a run that barely offered load.
	MinCompleted uint64 `json:"min_completed"`
}

func loadFaultsBudget(path string) (faultsBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return faultsBudget{}, err
	}
	var b faultsBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return faultsBudget{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.MinRestarts <= 0 && b.MinAvailability <= 0 {
		return faultsBudget{}, fmt.Errorf("%s: budget sets no restart or availability floor", path)
	}
	return b, nil
}

// violations checks one report against the fault-tolerance budget.
func (b faultsBudget) violations(data []byte) []string {
	phase := b.Phase
	if phase == "" {
		phase = "chaos"
	}
	var doc struct {
		Scenario string `json:"scenario"`
		Results  []struct {
			System   string                  `json:"system"`
			Phase    string                  `json:"phase"`
			Threads  int                     `json:"threads"`
			Service  *harness.ServiceRecord  `json:"service"`
			Recovery *harness.RecoveryRecord `json:"recovery"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{err.Error()}
	}
	if b.Scenario != "" && doc.Scenario != b.Scenario {
		return nil
	}
	var out []string
	judged := 0
	for _, r := range doc.Results {
		if r.Phase != phase || (b.System != "" && r.System != b.System) {
			continue
		}
		if r.Service == nil {
			out = append(out, fmt.Sprintf("%s threads=%d: no service block on %s record", r.System, r.Threads, phase))
			continue
		}
		judged++
		s := r.Service
		if s.Restarts < b.MinRestarts {
			out = append(out, fmt.Sprintf("%s threads=%d: %d restarts below floor %d",
				r.System, r.Threads, s.Restarts, b.MinRestarts))
		}
		if b.MinAvailability > 0 && s.Availability < b.MinAvailability {
			out = append(out, fmt.Sprintf("%s threads=%d: availability %.4f below floor %.4f",
				r.System, r.Threads, s.Availability, b.MinAvailability))
		}
		if s.CompletedTxns < b.MinCompleted {
			out = append(out, fmt.Sprintf("%s threads=%d: %d completed txns below floor %d",
				r.System, r.Threads, s.CompletedTxns, b.MinCompleted))
		}
		if rec := r.Recovery; rec != nil && rec.Violations > 0 {
			out = append(out, fmt.Sprintf("%s threads=%d: %d wire-level durability violations",
				r.System, r.Threads, rec.Violations))
		}
	}
	if judged == 0 {
		out = append(out, fmt.Sprintf("no %q records to judge (gate would pass vacuously)", phase))
	}
	return out
}

// replicaBudget is the committed replication budget
// (testdata/replica_budget.json): the regression contract for the
// replication chaos runs. It gates the committed BENCH_replica.json — a
// replica-chaos record that performed too few leader kill + promotion
// cycles (or partition episodes), dipped below the availability floor,
// completed too little work to judge, or reported any divergence
// violation between the surviving replica and the acknowledged-write
// model fails the build. Divergence is a hard zero: promotion-time
// losses are enumerated and tainted by the harness, so anything the
// verifier still counts is a real replication bug.
type replicaBudget struct {
	// Scenario restricts the check to reports of this scenario ("" = any);
	// reports of other scenarios pass vacuously.
	Scenario string `json:"scenario"`
	// Phase selects the records to judge ("" = "replica-chaos").
	Phase string `json:"phase"`
	// System is the budgeted system; "" judges every replica-chaos record.
	System string `json:"system"`
	// MinFailovers: each judged record must have survived at least this
	// many leader kill + follower promotion cycles.
	MinFailovers int `json:"min_failovers"`
	// MinPartitions: each judged record must have ridden out at least this
	// many replication-path partition episodes.
	MinPartitions int `json:"min_partitions"`
	// MinAvailability is the floor on completed / (completed + errors +
	// expired + in-doubt).
	MinAvailability float64 `json:"min_availability"`
	// MinCompleted is the floor on completed transactions, so the gate
	// cannot pass on a run that barely offered load.
	MinCompleted uint64 `json:"min_completed"`
}

func loadReplicaBudget(path string) (replicaBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return replicaBudget{}, err
	}
	var b replicaBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return replicaBudget{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.MinFailovers <= 0 && b.MinPartitions <= 0 && b.MinAvailability <= 0 {
		return replicaBudget{}, fmt.Errorf("%s: budget sets no failover, partition or availability floor", path)
	}
	return b, nil
}

// violations checks one report against the replication budget.
func (b replicaBudget) violations(data []byte) []string {
	phase := b.Phase
	if phase == "" {
		phase = "replica-chaos"
	}
	var doc struct {
		Scenario string `json:"scenario"`
		Results  []struct {
			System  string                 `json:"system"`
			Threads int                    `json:"threads"`
			Phase   string                 `json:"phase"`
			Service *harness.ServiceRecord `json:"service"`
			Replica *harness.ReplicaRecord `json:"replica"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{err.Error()}
	}
	if b.Scenario != "" && doc.Scenario != b.Scenario {
		return nil
	}
	var out []string
	judged := 0
	for _, r := range doc.Results {
		if r.Phase != phase || (b.System != "" && r.System != b.System) {
			continue
		}
		if r.Service == nil || r.Replica == nil {
			out = append(out, fmt.Sprintf("%s threads=%d: %s record missing service or replica block",
				r.System, r.Threads, phase))
			continue
		}
		judged++
		s, rp := r.Service, r.Replica
		if rp.Failovers < b.MinFailovers {
			out = append(out, fmt.Sprintf("%s threads=%d: %d failover cycles below floor %d",
				r.System, r.Threads, rp.Failovers, b.MinFailovers))
		}
		if rp.Partitions < b.MinPartitions {
			out = append(out, fmt.Sprintf("%s threads=%d: %d partition episodes below floor %d",
				r.System, r.Threads, rp.Partitions, b.MinPartitions))
		}
		if b.MinAvailability > 0 && s.Availability < b.MinAvailability {
			out = append(out, fmt.Sprintf("%s threads=%d: availability %.4f below floor %.4f",
				r.System, r.Threads, s.Availability, b.MinAvailability))
		}
		if s.CompletedTxns < b.MinCompleted {
			out = append(out, fmt.Sprintf("%s threads=%d: %d completed txns below floor %d",
				r.System, r.Threads, s.CompletedTxns, b.MinCompleted))
		}
		if rp.Violations > 0 {
			out = append(out, fmt.Sprintf(
				"%s threads=%d: %d divergence violations (missing=%d stale=%d mismatched=%d leaked=%d)",
				r.System, r.Threads, rp.Violations, rp.MissingKeys, rp.StaleKeys,
				rp.MismatchedKeys, rp.LeakedKeys))
		}
	}
	if judged == 0 {
		out = append(out, fmt.Sprintf("no %q records to judge (gate would pass vacuously)", phase))
	}
	return out
}

// violations checks one report against the budget. Only phase=="measured"
// records count (the headline aggregate); reports of other scenarios pass
// vacuously.
func (b allocBudget) violations(data []byte) []string {
	var doc struct {
		Scenario string `json:"scenario"`
		Results  []struct {
			System  string                `json:"system"`
			Phase   string                `json:"phase"`
			Threads int                   `json:"threads"`
			Memory  *harness.MemoryRecord `json:"memory"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{err.Error()}
	}
	if b.Scenario != "" && doc.Scenario != b.Scenario {
		return nil
	}
	baseline := map[int]float64{} // threads -> baseline allocs/op
	type measured struct {
		threads int
		allocs  float64
	}
	var sys []measured
	for _, r := range doc.Results {
		if r.Phase != "measured" || r.Memory == nil {
			continue
		}
		switch r.System {
		case b.System:
			sys = append(sys, measured{r.Threads, r.Memory.AllocsPerOp})
		case b.Baseline:
			baseline[r.Threads] = r.Memory.AllocsPerOp
		}
	}
	var out []string
	if len(sys) == 0 {
		return []string{fmt.Sprintf("no measured records for budgeted system %q", b.System)}
	}
	for _, m := range sys {
		if b.MaxAllocsPerOp > 0 && m.allocs > b.MaxAllocsPerOp {
			out = append(out, fmt.Sprintf("%s threads=%d: %.2f allocs/op exceeds ceiling %.2f",
				b.System, m.threads, m.allocs, b.MaxAllocsPerOp))
		}
		if b.Baseline == "" || b.MinReduction <= 0 {
			continue
		}
		base, ok := baseline[m.threads]
		if !ok {
			out = append(out, fmt.Sprintf("no baseline %q record at threads=%d", b.Baseline, m.threads))
			continue
		}
		if limit := (1 - b.MinReduction) * base; m.allocs > limit {
			out = append(out, fmt.Sprintf(
				"%s threads=%d: %.2f allocs/op not %.0f%% below baseline %.2f (limit %.2f)",
				b.System, m.threads, m.allocs, 100*b.MinReduction, base, limit))
		}
	}
	return out
}
