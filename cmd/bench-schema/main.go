// Command bench-schema validates BENCH_*.json benchmark reports against
// the committed schema (testdata/bench_schema.json), failing on drift:
// a report containing key paths the schema does not know, or missing
// required paths, exits non-zero. CI runs it over freshly generated
// reports so the JSON contract of internal/harness/report.go cannot
// change without updating the schema in the same commit.
//
// With -fail-on-violations it additionally fails when any recoverable
// crash record reports durability violations, which is what turns the
// nightly crash-recover soak into a correctness gate.
//
//	bench-schema -schema testdata/bench_schema.json BENCH_*.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"medley/internal/harness"
)

var (
	schemaFlag     = flag.String("schema", "testdata/bench_schema.json", "committed schema file")
	violationsFlag = flag.Bool("fail-on-violations", false,
		"also fail when a recoverable crash record reports durability violations")
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: bench-schema [-schema file] [-fail-on-violations] report.json...")
		return 2
	}
	schema, err := harness.LoadSchema(*schemaFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	failed := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		paths, err := harness.CanonicalPaths(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed = true
			continue
		}
		for _, msg := range schema.Diff(paths) {
			fmt.Fprintf(os.Stderr, "%s: schema drift: %s\n", path, msg)
			failed = true
		}
		if *violationsFlag {
			for _, msg := range durabilityViolations(data) {
				fmt.Fprintf(os.Stderr, "%s: %s\n", path, msg)
				failed = true
			}
		}
	}
	if failed {
		return 1
	}
	fmt.Printf("bench-schema: %d report(s) OK\n", flag.NArg())
	return 0
}

// durabilityViolations scans a report for recoverable crash records whose
// verifier counted violations.
func durabilityViolations(data []byte) []string {
	var doc struct {
		Results []struct {
			System   string                  `json:"system"`
			Phase    string                  `json:"phase"`
			Threads  int                     `json:"threads"`
			Recovery *harness.RecoveryRecord `json:"recovery"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{err.Error()}
	}
	var out []string
	for _, r := range doc.Results {
		if r.Recovery == nil || !r.Recovery.Recoverable {
			continue
		}
		if v := r.Recovery.Violations; v > 0 {
			out = append(out, fmt.Sprintf(
				"%s threads=%d: %d durability violations (missing=%d mismatched=%d leaked=%d)",
				r.System, r.Threads, v, r.Recovery.MissingWrites,
				r.Recovery.MismatchedWrites, r.Recovery.LeakedWrites))
		}
	}
	return out
}
