package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"medley/internal/harness"
	"medley/internal/service"
)

// Open-loop mode: -target switches medley-bench from the closed-loop
// scenario engine to the open-loop SLO path (internal/harness
// openloop.go). Arrivals are Poisson at each target rate; the same
// scenario's key distribution and transaction mix feed the generator, and
// the -server flag swaps the in-process driver for the HTTP client
// against a running medleyd — one sweep definition, either transport:
//
//	medley-bench -target 5000,20000,80000 -json -out BENCH_service.json
//	medleyd -listen :7654 -system medley-hash@8 &
//	medley-bench -target 20000 -server http://127.0.0.1:7654 -json
var (
	targetFlag = flag.String("target", "",
		"comma-separated open-loop offered rates in txn/s (enables open-loop mode)")
	serverFlag = flag.String("server", "",
		"medleyd base URL for open-loop mode (default: in-process driver)")
	inflightFlag = flag.Int("inflight", 64, "open-loop max in-flight requests")
)

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad -target %q", s)
		}
		out = append(out, r)
	}
	return out, nil
}

// openLoopScenario resolves the scenario whose distribution and mix feed
// the open-loop generator: -scenario when given, service-mixed otherwise.
func openLoopScenario() (harness.Scenario, error) {
	name := *scenarioFlag
	if name == "" {
		name = "service-mixed"
	}
	sc, err := harness.LookupScenario(name)
	if err != nil {
		return harness.Scenario{}, err
	}
	if sc.TPCC || sc.HasCrash() || sc.ServiceChaos || sc.ReplicaChaos {
		return harness.Scenario{}, fmt.Errorf("open-loop mode cannot run scenario %q (TPC-C, crash and chaos scripts have their own drivers)", name)
	}
	return sc, nil
}

// openLoopDriver builds the driver for the sweep: the HTTP client when
// -server names a medleyd, otherwise the in-process driver over the first
// selected system.
func openLoopDriver(sc harness.Scenario) (harness.Driver, error) {
	if *serverFlag != "" {
		return service.NewHTTPDriver(*serverFlag), nil
	}
	name := *systemsFlag
	if name == "auto" {
		name = harness.DefaultSystems(sc)[0]
	} else if i := strings.IndexByte(name, ','); i >= 0 {
		return nil, fmt.Errorf("open-loop mode drives one system per run, got -systems %q", name)
	}
	sys, err := harness.NewSystem(name, systemOpts())
	if err != nil {
		return nil, err
	}
	es, ok := sys.(harness.ExecutorSystem)
	if !ok {
		return nil, fmt.Errorf("system %q does not support batch execution (no NewExecutor)", name)
	}
	return harness.NewInProcDriver(es), nil
}

// runOpenLoop is the -target entry point: one rate sweep, one report.
func runOpenLoop() error {
	rates, err := parseRates(*targetFlag)
	if err != nil {
		return err
	}
	sc, err := openLoopScenario()
	if err != nil {
		return err
	}
	var mix harness.Mix
	for _, ph := range sc.Phases {
		if ph.Kind == harness.PhaseRun {
			mix = ph.Mix
			break
		}
	}
	d, err := openLoopDriver(sc)
	if err != nil {
		return err
	}
	res, err := harness.RunOpenLoop(d, harness.OpenLoopConfig{
		Rates:       rates,
		Duration:    *durationFlag,
		MaxInFlight: *inflightFlag,
		KeyRange:    uint64(*keyRange),
		Preload:     *preload,
		Seed:        *seedFlag,
		Mix:         mix,
		Dist:        sc.Dist,
	})
	if err != nil {
		return err
	}

	if !*jsonFlag {
		for _, ph := range res.Phases {
			fmt.Printf("%-20s %-24s driver=%-6s target=%8.0f offered=%8.0f goodput=%8.0f txn/s  shed=%-6d p50=%8.0fns  p99=%8.0fns  p99.9=%8.0fns\n",
				sc.Name, res.System, res.Driver, ph.TargetRate, ph.OfferedRate, ph.Goodput,
				ph.Shed, ph.P50Ns, ph.P99Ns, ph.P999Ns)
			if ph.Dropped > 0 || ph.Errors > 0 {
				fmt.Printf("  disposition         dropped=%d errors=%d (client queue overflow / failures)\n",
					ph.Dropped, ph.Errors)
			}
		}
	}
	if !*jsonFlag && *outFlag == "" {
		return nil
	}
	rep := harness.NewReport(sc.Name, []int{*inflightFlag}, *durationFlag,
		uint64(*keyRange), *preload, *seedFlag)
	rep.AddOpenLoop(res, sc.Name, *inflightFlag)
	return writeReport(rep)
}
