package main

import (
	"fmt"
	"time"

	"medley/internal/harness"
	"medley/internal/service"
)

// Replica-chaos mode: scenarios marked ReplicaChaos run through the
// replication chaos runner (internal/service replchaos.go) — a leader
// and a follower replaying its commit-ordered feed behind real
// listeners, with leader kill + promotion cycles or replication-path
// partitions mid-traffic, and a divergence check classifying every
// replica/model difference at the end. The scenario name keys the fault
// plan below; its distribution and first run phase's mix shape the
// workload, like service-chaos mode.

// replicaPlan is one scenario's replication fault plan.
type replicaPlan struct {
	failovers    int
	partitions   int
	partitionDur time.Duration
	feedShards   int
	maxLag       uint64
	maxSilence   time.Duration
	rate         float64
	client       service.HTTPDriverConfig
}

// replicaPlanFor maps a ReplicaChaos scenario to its plan. Unknown names
// get a single-failover plan, so new scenario entries fail safe.
func replicaPlanFor(name string) replicaPlan {
	client := service.HTTPDriverConfig{Deadline: 2 * time.Second, RetryBudget: -1}
	switch name {
	case "chaos-replica-lag":
		// Two partition episodes long enough to push replay lag past the
		// bound; MaxSilence below the episode length so a cut feed (which
		// freezes the follower's own lag estimate at zero) still trips the
		// staleness gate.
		return replicaPlan{
			partitions: 2, partitionDur: 500 * time.Millisecond,
			feedShards: 4, maxLag: 16, maxSilence: 150 * time.Millisecond,
			rate: 2000, client: client,
		}
	case "chaos-replica-failover":
		return replicaPlan{
			failovers:  3,
			feedShards: 4, maxLag: 4096,
			rate: 2000, client: client,
		}
	default:
		return replicaPlan{failovers: 1, feedShards: 4, maxLag: 4096, rate: 1000, client: client}
	}
}

// replicaPreload caps the wire preload for replica runs: the scenario
// measures failover availability and divergence, not load scale, and the
// preload must fit the feed rings with room for the run's writes (the
// dead leader's feed is read back for the lost-suffix accounting).
func replicaPreload() int {
	if *preload > 1<<14 {
		return 1 << 14
	}
	return *preload
}

// runReplicaScenario is the ReplicaChaos entry point: one replication
// chaos run per selected system, senders = the largest -threads count,
// one Report.
func runReplicaScenario(sc harness.Scenario, threads []int) error {
	plan := replicaPlanFor(sc.Name)
	senders := threads[len(threads)-1]
	var mix harness.Mix
	for _, ph := range sc.Phases {
		if ph.Kind == harness.PhaseRun {
			mix = ph.Mix
			break
		}
	}

	rep := harness.NewReport(sc.Name, threads, *durationFlag, uint64(*keyRange), replicaPreload(), *seedFlag)
	for _, name := range chaosSystems(sc) {
		if err := harness.ValidateSystemSpec(name, systemOpts()); err != nil {
			return err
		}
		res, err := service.RunReplicaChaos(service.ReplicaChaosConfig{
			System:       name,
			SystemOpts:   systemOpts(),
			Service:      service.Config{DedupWindow: 4096},
			Client:       plan.client,
			FeedShards:   plan.feedShards,
			MaxLag:       plan.maxLag,
			MaxSilence:   plan.maxSilence,
			Failovers:    plan.failovers,
			Partitions:   plan.partitions,
			PartitionDur: plan.partitionDur,
			Senders:      senders,
			Rate:         plan.rate,
			Duration:     *durationFlag,
			KeyRange:     uint64(*keyRange),
			Preload:      replicaPreload(),
			Seed:         *seedFlag,
			Mix:          mix,
			Dist:         sc.Dist,
		})
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, replicaRecord(sc.Name, res))
		if !*jsonFlag {
			printReplicaResult(sc.Name, res)
		}
	}
	if !*jsonFlag && *outFlag == "" {
		return nil
	}
	return writeReport(rep)
}

// replicaRecord converts a replication chaos run into one report record,
// phase "replica-chaos": the service block carries dispositions and
// availability, the replica block the fault schedule, leadership
// tracking, promotion-time loss and the classified divergence diff.
func replicaRecord(scenario string, res service.ReplicaChaosResult) harness.Record {
	return harness.Record{
		System:    res.System,
		Scenario:  scenario,
		Phase:     "replica-chaos",
		Threads:   res.Senders,
		Shards:    1,
		Txns:      res.Completed,
		ElapsedNs: int64(res.Elapsed),
		TxnPerSec: res.Goodput,
		Service: &harness.ServiceRecord{
			Driver:        "http",
			OfferedTxns:   res.Completed + res.Shed + res.Errors + res.Expired + res.InDoubt,
			CompletedTxns: res.Completed,
			ShedTxns:      res.Shed,
			ErrorTxns:     res.Errors,
			ExpiredTxns:   res.Expired,
			InDoubtTxns:   res.InDoubt,
			RetriedTxns:   res.Retries,
			DowntimeNs:    res.DowntimeNs,
			Availability:  res.Availability,
			TaintedKeys:   res.Tainted,
			Goodput:       res.Goodput,
		},
		Replica: &harness.ReplicaRecord{
			Failovers:        res.Failovers,
			Partitions:       res.Partitions,
			DriverFailovers:  res.DriverFailovers,
			DriverRecoveries: res.DriverRecoveries,
			StaleRejections:  res.StaleRejections,
			LostWrites:       res.LostWrites,
			MaxReplayLag:     res.MaxReplayLag,
			ModelEntries:     res.Verify.ModelEntries,
			MissingKeys:      res.Verify.Missing,
			StaleKeys:        res.Verify.Stale,
			MismatchedKeys:   res.Verify.Mismatched,
			LeakedKeys:       res.Verify.Leaked,
			Violations:       res.Violations(),
		},
	}
}

func printReplicaResult(scenario string, res service.ReplicaChaosResult) {
	fmt.Printf("%-24s %-16s senders=%-3d goodput=%8.0f txn/s  avail=%6.4f\n",
		scenario, res.System, res.Senders, res.Goodput, res.Availability)
	fmt.Printf("  disposition           completed=%d shed=%d errors=%d expired=%d in-doubt=%d retries=%d\n",
		res.Completed, res.Shed, res.Errors, res.Expired, res.InDoubt, res.Retries)
	if res.Failovers > 0 {
		fmt.Printf("  failovers             cycles=%d driver-swaps=%d driver-recoveries=%d lost-at-promotion=%d downtime=%v\n",
			res.Failovers, res.DriverFailovers, res.DriverRecoveries, res.LostWrites, time.Duration(res.DowntimeNs))
	}
	if res.Partitions > 0 {
		fmt.Printf("  partitions            episodes=%d max-replay-lag=%d stale-rejections=%d lost=%d\n",
			res.Partitions, res.MaxReplayLag, res.StaleRejections, res.LostWrites)
	}
	if v := res.Violations(); v == 0 {
		fmt.Printf("  divergence            OK (%d entries, %d tainted keys excluded)\n",
			res.Verify.ModelEntries, res.Tainted)
	} else {
		fmt.Printf("  divergence            FAILED: %d violations (missing=%d stale=%d mismatched=%d leaked=%d; %d tainted)\n",
			v, res.Verify.Missing, res.Verify.Stale, res.Verify.Mismatched, res.Verify.Leaked, res.Tainted)
	}
}
