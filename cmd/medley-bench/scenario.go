package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"medley/internal/harness"
	"medley/internal/tpcc"
)

// poolingEnabled parses the -pooling flag; unknown values are a usage
// error (exit 2), validated up front in run.
func poolingEnabled() (bool, error) {
	switch *poolingFlag {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("bad -pooling %q (want on|off)", *poolingFlag)
}

// fastpathsEnabled parses the -fastpaths flag the same way.
func fastpathsEnabled() (bool, error) {
	switch *fastpathsFlag {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("bad -fastpaths %q (want on|off)", *fastpathsFlag)
}

// groupcommitEnabled parses the -groupcommit flag the same way.
func groupcommitEnabled() (bool, error) {
	switch *groupcommitFlag {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("bad -groupcommit %q (want on|off)", *groupcommitFlag)
}

// systemOpts bundles the shared sizing flags for the harness system
// registry; every -systems name (optionally suffixed "@N" for N shards)
// resolves through harness.NewSystem against these options.
func systemOpts() harness.SystemOpts {
	pooling, _ := poolingEnabled() // validated in run
	fastpaths, _ := fastpathsEnabled()
	groupcommit, _ := groupcommitEnabled()
	return harness.SystemOpts{
		Buckets: *buckets, Shards: *shardsFlag, KeyRange: uint64(*keyRange),
		NoPooling:        !pooling,
		NoFastPaths:      !fastpaths,
		NoGroupCommit:    !groupcommit,
		WriteBackLatency: *nvmWB, FenceLatency: *nvmFence, StoreLatency: *nvmStore,
		AdvanceEvery: *advEvery,
	}
}

// tpccScale sizes the TPC-C database for scenario mode: the figure-9 scale
// by default, a tiny population under -short.
func tpccScale() tpcc.Scale {
	if *short {
		return tpcc.Scale{Warehouses: 2, Districts: 4, Customers: 20, Items: 200}
	}
	return tpcc.DefaultScale()
}

// selectSystems resolves the -systems flag for the given scenario: TPC-C
// scenarios construct through the TPC-C backend adapter, everything else
// through the harness system registry.
func selectSystems(sc harness.Scenario) ([]func() (harness.System, error), error) {
	names := harness.DefaultSystems(sc)
	if *systemsFlag != "auto" {
		names = nil
		for _, part := range strings.Split(*systemsFlag, ",") {
			names = append(names, strings.TrimSpace(part))
		}
	}
	var mks []func() (harness.System, error)
	for _, n := range names {
		n := n
		// Validate now (parse + lookup only, no construction) so unknown
		// names fail before any benchmarking.
		if err := harness.ValidateScenarioSystemSpec(sc, n, systemOpts()); err != nil {
			return nil, err
		}
		mks = append(mks, func() (harness.System, error) {
			return harness.NewScenarioSystem(sc, n, tpccScale(), systemOpts())
		})
	}
	return mks, nil
}

// runScenario is the -scenario entry point: every selected system, every
// thread count, one Report. Any error (unknown scenario, unknown system,
// unwritable -out) propagates to main's non-zero exit.
func runScenario(name string, threads []int) error {
	if name == "list" {
		for _, n := range harness.ScenarioNames() {
			sc, _ := harness.LookupScenario(n)
			fmt.Printf("  %-26s %s\n", n, sc.Description)
		}
		return nil
	}
	sc, err := harness.LookupScenario(name)
	if err != nil {
		return err
	}
	if sc.ServiceChaos {
		return runChaosScenario(sc, threads)
	}
	if sc.ReplicaChaos {
		return runReplicaScenario(sc, threads)
	}
	mks, err := selectSystems(sc)
	if err != nil {
		return err
	}

	rep := harness.NewReport(name, threads, *durationFlag, uint64(*keyRange), *preload, *seedFlag)
	for _, mk := range mks {
		for _, th := range threads {
			sys, err := mk()
			if err != nil {
				return err
			}
			res := harness.RunScenario(sys, sc, harness.EngineConfig{
				Threads: th, Duration: *durationFlag,
				KeyRange: uint64(*keyRange), Preload: *preload, Seed: *seedFlag,
			})
			rep.Add(res)
			if !*jsonFlag {
				printScenarioResult(res)
			}
		}
	}
	if !*jsonFlag && *outFlag == "" {
		return nil
	}
	return writeReport(rep)
}

// writeReport emits the JSON report to stdout or -out, surfacing close
// errors (a truncated BENCH_*.json must fail the run, not pass silently).
func writeReport(rep *harness.Report) error {
	if *outFlag == "" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printScenarioResult(res harness.ScenarioResult) {
	m := res.Measured
	sys := res.System
	fmt.Printf("%-20s %-24s threads=%-3d throughput=%12.0f txn/s  abort=%6.2f%%  p50=%8.0fns  p99=%8.0fns\n",
		res.Scenario, sys, res.Threads, m.Throughput, 100*m.AbortRate, m.P50LatencyNs, m.P99LatencyNs)
	if mm := m.Memory; mm != nil {
		fmt.Printf("  memory              allocs/op=%8.2f  bytes/op=%8.1f  gc-pause=%8v  pool-hit=%5.1f%%\n",
			mm.AllocsPerOp, mm.BytesPerOp, time.Duration(mm.GCPauseNs), 100*mm.PoolHitRate)
	}
	if fp := m.Fastpath; fp != nil && fp.Commits > 0 {
		fmt.Printf("  fastpath            read-only=%d  single-write=%d  share=%5.1f%%\n",
			fp.ReadOnlyCommits, fp.FastPathCommits-fp.ReadOnlyCommits, 100*fp.FastpathShare)
		if fp.GroupCommits > 0 {
			fmt.Printf("  groupcommit         groups=%d  grouped-txns=%d  share=%5.1f%%\n",
				fp.GroupCommits, fp.GroupedTxns, 100*fp.GroupShare)
		}
	}
	if len(res.Phases) > 1 {
		for _, ph := range res.Phases {
			if ph.Crash {
				continue // summarized by the recovery line below
			}
			fmt.Printf("  phase %-12s throughput=%12.0f txn/s  abort=%6.2f%%  p50=%8.0fns  p99=%8.0fns\n",
				ph.Phase, ph.Throughput, 100*ph.AbortRate, ph.P50LatencyNs, ph.P99LatencyNs)
		}
	}
	for _, k := range m.Kinds {
		fmt.Printf("  tx %-16s txns=%-10d aborts=%-8d avg=%8.0fns\n", k.Kind, k.Txns, k.Aborts, k.AvgNs)
	}
	if c := m.Consistency; c != nil {
		if c.Violations == 0 {
			fmt.Printf("  consistency         OK\n")
		} else {
			var classes []string
			for _, cc := range c.Classes {
				classes = append(classes, fmt.Sprintf("%s=%d", cc.Class, cc.Count))
			}
			fmt.Printf("  consistency         FAILED: %d violations (%s)\n",
				c.Violations, strings.Join(classes, " "))
		}
	}
	if fc := res.FinalCheck; fc != nil && fc.Checked {
		if v := fc.Violations(); v == 0 {
			fmt.Printf("  final-check         OK (%d entries)\n", fc.ModelEntries)
		} else {
			fmt.Printf("  final-check         FAILED: %d violations (missing=%d mismatched=%d leaked=%d)\n",
				v, fc.Missing, fc.Mismatched, fc.Leaked)
		}
	}
	if t := m.Telemetry; t != nil && len(t.Gauges) > 0 {
		var gs []string
		for _, g := range t.Gauges {
			gs = append(gs, fmt.Sprintf("%s=%.3f", g.Name, g.Value))
		}
		fmt.Printf("  telemetry           %s\n", strings.Join(gs, "  "))
	}
	if r := res.Recovery; r != nil {
		if !r.Recoverable {
			fmt.Printf("  crash-recover       recoverable=false\n")
		} else {
			fmt.Printf("  crash-recover       recovered=%d/%d entries  violations=%d  recovery=%v\n",
				r.Recovered, r.ModelEntries, r.Violations(), time.Duration(r.RecoveryNs))
		}
	}
}
