package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"medley/internal/harness"
)

// systemRegistry maps -systems names to constructors. Every system under
// the microbenchmark is available to every scenario; constructors read the
// shared sizing flags so -short scales scenario runs too.
var systemRegistry = map[string]func() harness.System{
	"medley-hash":    func() harness.System { return harness.NewMedleyHash(*buckets) },
	"medley-skip":    func() harness.System { return harness.NewMedleySkip() },
	"txmontage-hash": func() harness.System { return harness.NewMontage(montageOpts(false)) },
	"txmontage-skip": func() harness.System { return harness.NewMontage(montageOpts(true)) },
	"onefile-hash": func() harness.System {
		return harness.NewOneFile(harness.OneFileOpts{Buckets: *buckets})
	},
	"onefile-skip": func() harness.System {
		return harness.NewOneFile(harness.OneFileOpts{Skiplist: true})
	},
	"ponefile-hash": func() harness.System {
		return harness.NewOneFile(harness.OneFileOpts{
			Buckets: *buckets, Persistent: true, RegionWords: 1 << 24,
			WriteBackLatency: *nvmWB, FenceLatency: *nvmFence,
		})
	},
	"ponefile-skip": func() harness.System {
		return harness.NewOneFile(harness.OneFileOpts{
			Skiplist: true, Persistent: true, RegionWords: 1 << 24,
			WriteBackLatency: *nvmWB, FenceLatency: *nvmFence,
		})
	},
	"tdsl":       func() harness.System { return harness.NewTDSL() },
	"lftt":       func() harness.System { return harness.NewLFTT() },
	"plain-skip": func() harness.System { return harness.NewOriginalSkip() },
	"txoff-skip": func() harness.System { return harness.NewTxOffSkip() },
}

func montageOpts(skiplist bool) harness.MontageOpts {
	return harness.MontageOpts{
		Skiplist: skiplist, Buckets: *buckets, RegionWords: 1 << 26,
		WriteBackLatency: *nvmWB, FenceLatency: *nvmFence, StoreLatency: *nvmStore,
	}
}

func systemNames() []string {
	names := make([]string, 0, len(systemRegistry))
	for n := range systemRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// runScenario is the -scenario entry point: every selected system, every
// thread count, one Report.
func runScenario(name string, threads []int) {
	if name == "list" {
		for _, n := range harness.ScenarioNames() {
			sc, _ := harness.LookupScenario(n)
			fmt.Printf("  %-20s %s\n", n, sc.Description)
		}
		return
	}
	sc, err := harness.LookupScenario(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var mks []func() harness.System
	for _, part := range strings.Split(*systemsFlag, ",") {
		n := strings.TrimSpace(part)
		mk, ok := systemRegistry[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown system %q (known: %s)\n", n, strings.Join(systemNames(), ", "))
			os.Exit(2)
		}
		mks = append(mks, mk)
	}

	rep := harness.NewReport(name, threads, *durationFlag, uint64(*keyRange), *preload, *seedFlag)
	for _, mk := range mks {
		for _, th := range threads {
			res := harness.RunScenario(mk(), sc, harness.EngineConfig{
				Threads: th, Duration: *durationFlag,
				KeyRange: uint64(*keyRange), Preload: *preload, Seed: *seedFlag,
			})
			rep.Add(res)
			if !*jsonFlag {
				printScenarioResult(res)
			}
		}
	}
	if !*jsonFlag && *outFlag == "" {
		return
	}
	w := os.Stdout
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func printScenarioResult(res harness.ScenarioResult) {
	m := res.Measured
	fmt.Printf("%-20s %-24s threads=%-3d throughput=%12.0f txn/s  abort=%6.2f%%  p50=%8.0fns  p99=%8.0fns\n",
		res.Scenario, res.System, res.Threads, m.Throughput, 100*m.AbortRate, m.P50LatencyNs, m.P99LatencyNs)
	if len(res.Phases) > 1 {
		for _, ph := range res.Phases {
			fmt.Printf("  phase %-12s throughput=%12.0f txn/s  abort=%6.2f%%  p50=%8.0fns  p99=%8.0fns\n",
				ph.Phase, ph.Throughput, 100*ph.AbortRate, ph.P50LatencyNs, ph.P99LatencyNs)
		}
	}
}
