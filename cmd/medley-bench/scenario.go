package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"medley/internal/harness"
)

// systemRegistry maps -systems names to constructors. Every system under
// the microbenchmark is available to every scenario; constructors read the
// shared sizing flags so -short scales scenario runs too.
var systemRegistry = map[string]func() harness.System{
	"medley-hash":    func() harness.System { return harness.NewMedleyHash(*buckets) },
	"medley-skip":    func() harness.System { return harness.NewMedleySkip() },
	"txmontage-hash": func() harness.System { return harness.NewMontage(montageOpts(false)) },
	"txmontage-skip": func() harness.System { return harness.NewMontage(montageOpts(true)) },
	"onefile-hash": func() harness.System {
		return harness.NewOneFile(harness.OneFileOpts{Buckets: *buckets})
	},
	"onefile-skip": func() harness.System {
		return harness.NewOneFile(harness.OneFileOpts{Skiplist: true})
	},
	"ponefile-hash": func() harness.System {
		return harness.NewOneFile(harness.OneFileOpts{
			Buckets: *buckets, Persistent: true, RegionWords: ponefileRegionWords(),
			WriteBackLatency: *nvmWB, FenceLatency: *nvmFence,
		})
	},
	"ponefile-skip": func() harness.System {
		return harness.NewOneFile(harness.OneFileOpts{
			Skiplist: true, Persistent: true, RegionWords: ponefileRegionWords(),
			WriteBackLatency: *nvmWB, FenceLatency: *nvmFence,
		})
	},
	"tdsl":       func() harness.System { return harness.NewTDSL() },
	"lftt":       func() harness.System { return harness.NewLFTT() },
	"plain-skip": func() harness.System { return harness.NewOriginalSkip() },
	"txoff-skip": func() harness.System { return harness.NewTxOffSkip() },
}

// montageRegionWords sizes the simulated NVM with the key space (region
// size never changes measured latencies, only footprint), so -short smoke
// runs stop allocating paper-scale half-gigabyte regions.
func montageRegionWords() int {
	words := 1 << 22
	if need := *keyRange << 6; need > words {
		words = need
	}
	return words
}

// ponefileRegionWords sizes POneFile's region: home words for the object
// graph plus the per-key durable directory, with room for the post-crash
// rebuild to allocate a second generation of words.
func ponefileRegionWords() int {
	words := 1 << 20
	if need := *keyRange << 5; need > words {
		words = need
	}
	return words
}

func montageOpts(skiplist bool) harness.MontageOpts {
	return harness.MontageOpts{
		Skiplist: skiplist, Buckets: *buckets, RegionWords: montageRegionWords(),
		WriteBackLatency: *nvmWB, FenceLatency: *nvmFence, StoreLatency: *nvmStore,
		AdvanceEvery: *advEvery,
	}
}

// defaultSystems is the 'auto' system set: crash scenarios need the
// persistent systems (plus one transient system to show the
// recoverable: false path); everything else keeps the historical default.
func defaultSystems(sc harness.Scenario) []string {
	if sc.HasCrash() {
		return []string{"txmontage-hash", "ponefile-hash", "medley-hash"}
	}
	return []string{"medley-hash", "medley-skip", "onefile-hash", "tdsl", "lftt"}
}

func systemNames() []string {
	names := make([]string, 0, len(systemRegistry))
	for n := range systemRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// selectSystems resolves the -systems flag against the registry for the
// given scenario.
func selectSystems(sc harness.Scenario) ([]func() harness.System, error) {
	names := defaultSystems(sc)
	if *systemsFlag != "auto" {
		names = nil
		for _, part := range strings.Split(*systemsFlag, ",") {
			names = append(names, strings.TrimSpace(part))
		}
	}
	var mks []func() harness.System
	for _, n := range names {
		mk, ok := systemRegistry[n]
		if !ok {
			return nil, fmt.Errorf("unknown system %q (known: %s)", n, strings.Join(systemNames(), ", "))
		}
		mks = append(mks, mk)
	}
	return mks, nil
}

// runScenario is the -scenario entry point: every selected system, every
// thread count, one Report. Any error (unknown scenario, unknown system,
// unwritable -out) propagates to main's non-zero exit.
func runScenario(name string, threads []int) error {
	if name == "list" {
		for _, n := range harness.ScenarioNames() {
			sc, _ := harness.LookupScenario(n)
			fmt.Printf("  %-26s %s\n", n, sc.Description)
		}
		return nil
	}
	sc, err := harness.LookupScenario(name)
	if err != nil {
		return err
	}
	mks, err := selectSystems(sc)
	if err != nil {
		return err
	}

	rep := harness.NewReport(name, threads, *durationFlag, uint64(*keyRange), *preload, *seedFlag)
	for _, mk := range mks {
		for _, th := range threads {
			res := harness.RunScenario(mk(), sc, harness.EngineConfig{
				Threads: th, Duration: *durationFlag,
				KeyRange: uint64(*keyRange), Preload: *preload, Seed: *seedFlag,
			})
			rep.Add(res)
			if !*jsonFlag {
				printScenarioResult(res)
			}
		}
	}
	if !*jsonFlag && *outFlag == "" {
		return nil
	}
	return writeReport(rep)
}

// writeReport emits the JSON report to stdout or -out, surfacing close
// errors (a truncated BENCH_*.json must fail the run, not pass silently).
func writeReport(rep *harness.Report) error {
	if *outFlag == "" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printScenarioResult(res harness.ScenarioResult) {
	m := res.Measured
	fmt.Printf("%-20s %-24s threads=%-3d throughput=%12.0f txn/s  abort=%6.2f%%  p50=%8.0fns  p99=%8.0fns\n",
		res.Scenario, res.System, res.Threads, m.Throughput, 100*m.AbortRate, m.P50LatencyNs, m.P99LatencyNs)
	if len(res.Phases) > 1 {
		for _, ph := range res.Phases {
			if ph.Crash {
				continue // summarized by the recovery line below
			}
			fmt.Printf("  phase %-12s throughput=%12.0f txn/s  abort=%6.2f%%  p50=%8.0fns  p99=%8.0fns\n",
				ph.Phase, ph.Throughput, 100*ph.AbortRate, ph.P50LatencyNs, ph.P99LatencyNs)
		}
	}
	if r := res.Recovery; r != nil {
		if !r.Recoverable {
			fmt.Printf("  crash-recover       recoverable=false\n")
		} else {
			fmt.Printf("  crash-recover       recovered=%d/%d entries  violations=%d  recovery=%v\n",
				r.Recovered, r.ModelEntries, r.Violations(), time.Duration(r.RecoveryNs))
		}
	}
}
