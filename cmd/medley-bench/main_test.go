package main

import (
	"strings"
	"testing"

	"medley/internal/harness"
)

// TestRunScenarioUnknownNameFails pins the CI-smoke contract: an unknown
// -scenario value must surface an error (main turns it into exit 2), not
// print-and-exit-zero.
func TestRunScenarioUnknownNameFails(t *testing.T) {
	err := runScenario("no-such-scenario", []int{1})
	if err == nil {
		t.Fatal("unknown scenario did not error")
	}
	if !strings.Contains(err.Error(), "no-such-scenario") {
		t.Fatalf("error does not name the scenario: %v", err)
	}
}

func TestSelectSystemsRejectsUnknown(t *testing.T) {
	old := *systemsFlag
	defer func() { *systemsFlag = old }()
	*systemsFlag = "medley-hash,bogus-system"
	sc, err := harness.LookupScenario("uniform-mixed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := selectSystems(sc); err == nil {
		t.Fatal("unknown system did not error")
	}
}

// TestDefaultSystemsAuto checks the 'auto' set: crash scenarios get the
// persistent systems (so the durability verification actually runs) plus
// one transient system for the recoverable:false path.
func TestDefaultSystemsAuto(t *testing.T) {
	crash, err := harness.LookupScenario("crash-recover-zipfian")
	if err != nil {
		t.Fatal(err)
	}
	got := harness.DefaultSystems(crash)
	joined := strings.Join(got, ",")
	if !strings.Contains(joined, "txmontage") || !strings.Contains(joined, "ponefile") {
		t.Fatalf("crash default %v lacks a persistent system", got)
	}
	plain, err := harness.LookupScenario("uniform-mixed")
	if err != nil {
		t.Fatal(err)
	}
	if p := harness.DefaultSystems(plain); strings.Contains(strings.Join(p, ","), "ponefile") {
		t.Fatalf("plain default %v should not include persistent systems", p)
	}
	for _, n := range append(got, harness.DefaultSystems(plain)...) {
		if err := harness.ValidateSystemSpec(n, systemOpts()); err != nil {
			t.Fatalf("default system %q not valid: %v", n, err)
		}
	}
}

func TestParseThreads(t *testing.T) {
	if _, err := parseThreads("1,2,x"); err == nil {
		t.Fatal("bad thread list accepted")
	}
	if _, err := parseThreads("0"); err == nil {
		t.Fatal("zero thread count accepted")
	}
	got, err := parseThreads(" 1, 2,8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Fatalf("parseThreads = %v, %v", got, err)
	}
}
