package main

import (
	"fmt"
	"strings"
	"time"

	"medley/internal/faultnet"
	"medley/internal/harness"
	"medley/internal/service"
)

// Chaos-service mode: scenarios marked ServiceChaos run through the
// crash-restart chaos runner (internal/service chaos.go) instead of the
// closed-loop engine — medleyd hosted over a durable backend behind a
// faultnet proxy, SIGKILL-equivalent restarts mid-traffic, and wire-level
// journal verification against the recovered state. The scenario name
// keys the fault plan and kill schedule below; its distribution and first
// run phase's mix shape the workload, like open-loop mode.

// chaosPlan is one scenario's fault plan and kill schedule.
type chaosPlan struct {
	restarts int
	rate     float64
	faults   faultnet.Faults
	client   service.HTTPDriverConfig
}

// chaosPlanFor maps a ServiceChaos scenario to its plan. Unknown names
// get the restart-only plan, so new scenario entries fail safe (clean
// network, kills only).
func chaosPlanFor(name string) chaosPlan {
	base := service.HTTPDriverConfig{Deadline: 250 * time.Millisecond}
	switch name {
	case "chaos-net-flaky":
		// Flaky network on top of the restarts: small base latency, heavy
		// jitter, and every 7th connection reset mid-request — the retry,
		// dedup and in-doubt machinery all stay hot.
		return chaosPlan{
			restarts: 3, rate: 4000,
			faults: faultnet.Faults{
				Latency:     200 * time.Microsecond,
				Jitter:      2 * time.Millisecond,
				ResetEveryN: 7,
			},
			client: base,
		}
	case "chaos-slow-client":
		// Slow links against tight deadlines: most of the deadline is
		// eaten on the wire, so admission-time and pre-commit expiry both
		// fire; slow-close keeps resets from looking instantaneous.
		return chaosPlan{
			restarts: 1, rate: 2000,
			faults: faultnet.Faults{
				Latency:   2 * time.Millisecond,
				Jitter:    5 * time.Millisecond,
				SlowClose: 10 * time.Millisecond,
			},
			client: service.HTTPDriverConfig{Deadline: 50 * time.Millisecond},
		}
	default: // chaos-service-restart and future entries
		return chaosPlan{restarts: 3, rate: 4000, client: base}
	}
}

// chaosSystems resolves -systems for a chaos scenario (auto → the durable
// default set).
func chaosSystems(sc harness.Scenario) []string {
	if *systemsFlag == "auto" {
		return harness.DefaultSystems(sc)
	}
	var names []string
	for _, part := range strings.Split(*systemsFlag, ",") {
		names = append(names, strings.TrimSpace(part))
	}
	return names
}

// runChaosScenario is the ServiceChaos entry point: one chaos run per
// selected system, senders = the largest -threads count, one Report. The
// dedup window stays at the medleyd default so retries under connection
// resets stay exactly-once.
func runChaosScenario(sc harness.Scenario, threads []int) error {
	plan := chaosPlanFor(sc.Name)
	senders := threads[len(threads)-1]
	var mix harness.Mix
	for _, ph := range sc.Phases {
		if ph.Kind == harness.PhaseRun {
			mix = ph.Mix
			break
		}
	}

	rep := harness.NewReport(sc.Name, threads, *durationFlag, uint64(*keyRange), *preload, *seedFlag)
	for _, name := range chaosSystems(sc) {
		if err := harness.ValidateSystemSpec(name, systemOpts()); err != nil {
			return err
		}
		res, err := service.RunChaos(service.ChaosConfig{
			System:     name,
			SystemOpts: systemOpts(),
			Service:    service.Config{DedupWindow: 4096},
			Client:     plan.client,
			Faults:     plan.faults,
			Restarts:   plan.restarts,
			Senders:    senders,
			Rate:       plan.rate,
			Duration:   *durationFlag,
			KeyRange:   uint64(*keyRange),
			Preload:    *preload,
			Seed:       *seedFlag,
			Mix:        mix,
			Dist:       sc.Dist,
		})
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, chaosRecord(sc.Name, res))
		if !*jsonFlag {
			printChaosResult(sc.Name, res)
		}
	}
	if !*jsonFlag && *outFlag == "" {
		return nil
	}
	return writeReport(rep)
}

// chaosRecord converts a chaos run into one report record, phase "chaos":
// the service block carries dispositions and availability, the recovery
// block carries the accumulated recovery time and the wire-level
// verification diff (model entries and violations come from VerifyWire,
// not an in-process journal).
func chaosRecord(scenario string, res service.ChaosResult) harness.Record {
	return harness.Record{
		System:    res.System,
		Scenario:  scenario,
		Phase:     "chaos",
		Threads:   res.Senders,
		Shards:    1,
		Txns:      res.Completed,
		ElapsedNs: int64(res.Elapsed),
		TxnPerSec: res.Goodput,
		Latency:   harness.LatencySummary{AvgNs: res.AvgNs, P50Ns: res.P50Ns, P99Ns: res.P99Ns},
		Service: &harness.ServiceRecord{
			Driver:        "http",
			OfferedTxns:   res.Completed + res.Shed + res.Errors + res.Expired + res.InDoubt,
			CompletedTxns: res.Completed,
			ShedTxns:      res.Shed,
			ErrorTxns:     res.Errors,
			ExpiredTxns:   res.Expired,
			InDoubtTxns:   res.InDoubt,
			RetriedTxns:   res.Retries,
			BreakerOpens:  res.BreakerOpens,
			Restarts:      res.Restarts,
			DowntimeNs:    res.DowntimeNs,
			Availability:  res.Availability,
			TaintedKeys:   res.Tainted,
			Goodput:       res.Goodput,
			P999Ns:        res.P999Ns,
		},
		Recovery: &harness.RecoveryRecord{
			Recoverable:      true,
			RecoveryNs:       res.RecoveryNs,
			RecoveredEntries: res.Verify.ModelEntries,
			ModelEntries:     res.Verify.ModelEntries,
			MissingWrites:    res.Verify.Missing,
			MismatchedWrites: res.Verify.Mismatched,
			LeakedWrites:     res.Verify.Leaked,
			Violations:       res.Violations(),
		},
	}
}

func printChaosResult(scenario string, res service.ChaosResult) {
	fmt.Printf("%-22s %-24s senders=%-3d goodput=%8.0f txn/s  avail=%6.4f  p50=%8.0fns  p99=%8.0fns  p99.9=%8.0fns\n",
		scenario, res.System, res.Senders, res.Goodput, res.Availability,
		res.P50Ns, res.P99Ns, res.P999Ns)
	fmt.Printf("  disposition           completed=%d shed=%d errors=%d expired=%d in-doubt=%d retries=%d breaker-opens=%d\n",
		res.Completed, res.Shed, res.Errors, res.Expired, res.InDoubt, res.Retries, res.BreakerOpens)
	fmt.Printf("  restarts              n=%d downtime=%v recovery=%v\n",
		res.Restarts, time.Duration(res.DowntimeNs), time.Duration(res.RecoveryNs))
	if v := res.Violations(); v == 0 {
		fmt.Printf("  wire-verify           OK (%d entries, %d tainted keys excluded)\n",
			res.Verify.ModelEntries, res.Tainted)
	} else {
		fmt.Printf("  wire-verify           FAILED: %d violations (missing=%d mismatched=%d leaked=%d; %d tainted)\n",
			v, res.Verify.Missing, res.Verify.Mismatched, res.Verify.Leaked, res.Tainted)
	}
}
