// Command medley-bench regenerates the paper's evaluation (Section 6) and
// runs the workload engine's scenario suite beyond it.
//
// Figure mode reproduces the paper's plots:
//
//	-fig 7    transactional hash-table throughput (Medley, txMontage,
//	          OneFile, POneFile) at each get:insert:remove ratio
//	-fig 8    transactional skiplist throughput (+ TDSL, LFTT)
//	-fig 9    TPC-C (newOrder+payment 1:1) throughput
//	-fig 10a  skiplist latency on DRAM (Original / TxOff / TxOn)
//	-fig 10b  transient latency with payloads on simulated NVM
//	-fig 10c  fully persistent txMontage latency
//	-fig all  everything
//
// Output is a whitespace-aligned series per system, one row per thread
// count, matching the shape of the paper's plots. Absolute numbers depend
// on the host (the paper used 2x20-core Xeon + Optane; see EXPERIMENTS.md);
// the orderings and ratios are the reproduction target.
//
// Scenario mode drives any registered system through a named workload
// scenario (key distribution x transaction mix x phase script):
//
//	medley-bench -scenario zipfian-mixed -json
//	medley-bench -scenario list
//	medley-bench -scenario tpcc-mini -systems medley-hash,onefile-hash,tdsl
//	medley-bench -scenario crash-recover-zipfian -json
//	medley-bench -scenario sharded-zipfian -systems medley-hash,medley-hash@8
//
// Systems resolve through the harness registry (internal/harness). A
// "name@N" suffix (or the global -shards flag) runs a shardable system
// over an N-way hash-partitioned ShardedStore (internal/kv): N structure
// instances under one TxManager, cross-shard transactions still strictly
// serializable. Competitor systems (OneFile, TDSL, LFTT) cannot shard —
// their transactions live in their own STMs — and refuse a shard count.
//
// The crash-recover-* scenarios crash the simulated NVM mid-run, time
// recovery, and verify the recovered state against the committed-operation
// model (see EXPERIMENTS.md). -systems defaults to "auto": the persistent
// systems for crash scenarios, the single-vs-sharded comparison set for
// sharded-* scenarios, and every transient structure plus the competitors
// otherwise.
//
// -json emits a machine-readable Report (see internal/harness/report.go)
// with throughput, abort rate and p50/p99 latency per system, phase and
// thread count; -out writes it to a file (conventionally
// BENCH_<scenario>.json) instead of stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/harness"
	"medley/internal/montage"
	"medley/internal/onefile"
	"medley/internal/tpcc"
)

var (
	figFlag      = flag.String("fig", "all", "figure to regenerate: 7, 8, 9, 10a, 10b, 10c, all")
	scenarioFlag = flag.String("scenario", "", "run a workload scenario instead of a figure ('list' to enumerate)")
	systemsFlag  = flag.String("systems", "auto",
		"comma-separated systems for -scenario ('list' to enumerate, 'auto' picks a set fitting the scenario)")
	jsonFlag     = flag.Bool("json", false, "emit the scenario report as JSON")
	outFlag      = flag.String("out", "", "write the JSON report to this file (e.g. BENCH_zipfian-mixed.json)")
	seedFlag     = flag.Int64("seed", 42, "workload generator seed")
	threadsFlag  = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	durationFlag = flag.Duration("duration", 2*time.Second, "measurement duration per point")
	keyRange     = flag.Int("keyrange", 1<<20, "microbenchmark key space (paper: 1M)")
	preload      = flag.Int("preload", 1<<19, "preloaded pairs (paper: 0.5M)")
	buckets      = flag.Int("buckets", 1<<20, "hash table buckets (paper: 1M)")
	shardsFlag   = flag.Int("shards", 1, "store partitions for shardable systems (or per-system name@N)")
	nvmWB        = flag.Duration("nvm-writeback", 300*time.Nanosecond, "injected NVM write-back latency per line")
	nvmFence     = flag.Duration("nvm-fence", 100*time.Nanosecond, "injected NVM fence latency")
	nvmStore     = flag.Duration("nvm-store", 60*time.Nanosecond, "injected NVM store latency per word")
	advEvery     = flag.Duration("advance-every", 20*time.Millisecond, "txMontage epoch length (paper: ~10-100ms)")
	short        = flag.Bool("short", false, "tiny configuration for smoke runs")
	poolingFlag  = flag.String("pooling", "on",
		"cell/node recycling arenas for Medley systems: on|off (-pooling=off is the unpooled allocation baseline)")
	fastpathsFlag = flag.String("fastpaths", "on",
		"commit fast paths for Medley systems: on|off (-fastpaths=off forces every commit through the full descriptor handshake)")
	groupcommitFlag = flag.String("groupcommit", "on",
		"merged group commits for Medley systems: on|off (-groupcommit=off commits every grouped transaction individually)")
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
)

func main() {
	os.Exit(run())
}

// profiles starts the requested pprof collection and returns the teardown
// to run before exit. Profile file errors are fatal up front: a benchmark
// run whose profile silently failed to open wastes the whole measurement.
func profiles() (func(), error) {
	var stops []func()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return nil, err
		}
		stops = append(stops, func() {
			runtime.GC() // flush recent allocations into the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		})
	}
	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}, nil
}

// run is main with a single exit point: every error path returns a
// non-zero status (CI smoke depends on unknown -scenario/-systems/-fig
// values failing the job, not just printing).
func run() int {
	flag.Parse()
	if _, err := poolingEnabled(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if _, err := fastpathsEnabled(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if _, err := groupcommitEnabled(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	stopProfiles, err := profiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProfiles()
	if *short {
		*keyRange = 1 << 12
		*preload = 1 << 11
		*buckets = 1 << 12
		*durationFlag = 300 * time.Millisecond
	}
	if *systemsFlag == "list" {
		for _, n := range harness.SystemNames() {
			fmt.Println(" ", n)
		}
		return 0
	}
	threads, err := parseThreads(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *targetFlag != "" {
		if err := runOpenLoop(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		return 0
	}
	if *scenarioFlag != "" {
		if err := runScenario(*scenarioFlag, threads); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		return 0
	}
	switch *figFlag {
	case "7":
		fig7(threads)
	case "8":
		fig8(threads)
	case "9":
		fig9(threads)
	case "10a":
		fig10("a", threads)
	case "10b":
		fig10("b", threads)
	case "10c":
		fig10("c", threads)
	case "all":
		fig7(threads)
		fig8(threads)
		fig9(threads)
		fig10("a", threads)
		fig10("b", threads)
		fig10("c", threads)
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *figFlag)
		return 2
	}
	return 0
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -threads %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func cfg(th int, ratio harness.Ratio) harness.Config {
	return harness.Config{
		Threads: th, Duration: *durationFlag,
		KeyRange: uint64(*keyRange), Preload: *preload,
		TxMin: 1, TxMax: 10, Ratio: ratio, Seed: 42,
	}
}

// sweep measures one system at every thread count and prints its series.
func sweep(mk func() harness.System, threads []int, ratio harness.Ratio) {
	for _, th := range threads {
		res := harness.Run(mk(), cfg(th, ratio))
		fmt.Printf("  %-24s threads=%-3d throughput=%12.0f txn/s  latency=%8.0f ns/txn\n",
			res.System, th, res.Throughput, res.LatencyNs)
	}
}

// medleyPooling resolves the -pooling flag for figure-mode Medley systems
// (validated in run; scenario mode routes it through SystemOpts instead).
func medleyPooling() bool {
	on, _ := poolingEnabled()
	return on
}

// medleyFastpaths resolves the -fastpaths flag the same way.
func medleyFastpaths() bool {
	on, _ := fastpathsEnabled()
	return on
}

// medleyGroupcommit resolves the -groupcommit flag the same way.
func medleyGroupcommit() bool {
	on, _ := groupcommitEnabled()
	return on
}

func fig7(threads []int) {
	for _, ratio := range harness.PaperRatios {
		fmt.Printf("\n== Figure 7 (hash table) get:insert:remove %s ==\n", ratio)
		sweep(func() harness.System {
			return harness.NewMedleyKV("hash", 1, *buckets, medleyPooling(), medleyFastpaths(), medleyGroupcommit())
		}, threads, ratio)
		sweep(func() harness.System {
			return harness.NewMontage(harness.MontageOpts{
				Buckets: *buckets, RegionWords: 1 << 26,
				WriteBackLatency: *nvmWB, FenceLatency: *nvmFence, StoreLatency: *nvmStore,
			})
		}, threads, ratio)
		sweep(func() harness.System { return harness.NewOneFile(harness.OneFileOpts{Buckets: *buckets}) }, threads, ratio)
		sweep(func() harness.System {
			return harness.NewOneFile(harness.OneFileOpts{
				Buckets: *buckets, Persistent: true, RegionWords: 1 << 24,
				WriteBackLatency: *nvmWB, FenceLatency: *nvmFence,
			})
		}, threads, ratio)
	}
}

func fig8(threads []int) {
	for _, ratio := range harness.PaperRatios {
		fmt.Printf("\n== Figure 8 (skiplist) get:insert:remove %s ==\n", ratio)
		sweep(func() harness.System {
			return harness.NewMedleyKV("skip", 1, 0, medleyPooling(), medleyFastpaths(), medleyGroupcommit())
		}, threads, ratio)
		sweep(func() harness.System {
			return harness.NewMontage(harness.MontageOpts{
				Skiplist: true, RegionWords: 1 << 26,
				WriteBackLatency: *nvmWB, FenceLatency: *nvmFence, StoreLatency: *nvmStore,
			})
		}, threads, ratio)
		sweep(func() harness.System { return harness.NewOneFile(harness.OneFileOpts{Skiplist: true}) }, threads, ratio)
		sweep(func() harness.System {
			return harness.NewOneFile(harness.OneFileOpts{
				Skiplist: true, Persistent: true, RegionWords: 1 << 24,
				WriteBackLatency: *nvmWB, FenceLatency: *nvmFence,
			})
		}, threads, ratio)
		sweep(func() harness.System { return harness.NewTDSL() }, threads, ratio)
		sweep(func() harness.System { return harness.NewLFTT() }, threads, ratio)
	}
}

func fig9(threads []int) {
	fmt.Printf("\n== Figure 9 (TPC-C: newOrder+payment 1:1) ==\n")
	scale := tpcc.DefaultScale()
	if *short {
		scale = tpcc.Scale{Warehouses: 2, Districts: 4, Customers: 20, Items: 200}
	}
	type mkBackend struct {
		name string
		mk   func() tpcc.Backend
	}
	backends := []mkBackend{
		{"Medley", func() tpcc.Backend { return tpcc.NewMedleyBackend() }},
		{"txMontage", func() tpcc.Backend {
			return tpcc.NewMontageBackend(montage.NewSystem(montage.Config{
				RegionWords:      1 << 26,
				WriteBackLatency: *nvmWB, FenceLatency: *nvmFence, StoreLatency: *nvmStore,
			}))
		}},
		{"OneFile", func() tpcc.Backend { return tpcc.NewOneFileBackend(onefile.New(), "OneFile") }},
		{"TDSL", func() tpcc.Backend { return tpcc.NewTDSLBackend() }},
	}
	for _, be := range backends {
		for _, th := range threads {
			b := be.mk()
			if err := tpcc.Load(b, scale); err != nil {
				fmt.Fprintf(os.Stderr, "load %s: %v\n", be.name, err)
				os.Exit(1)
			}
			var stopMontage func()
			if mb, ok := b.(*tpcc.MontageBackend); ok {
				stopMontage = mb.StartAdvancer(20 * time.Millisecond)
			}
			var txns atomic.Uint64
			var stop atomic.Bool
			var wg sync.WaitGroup
			for g := 0; g < th; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					d := tpcc.NewDriver(b, scale, seed)
					var local uint64
					for !stop.Load() {
						if _, err := d.Step(); err != nil {
							fmt.Fprintf(os.Stderr, "tpcc step: %v\n", err)
							os.Exit(1)
						}
						local++
					}
					txns.Add(local)
				}(int64(g)*13 + 7)
			}
			begin := time.Now()
			time.Sleep(*durationFlag)
			stop.Store(true)
			wg.Wait()
			elapsed := time.Since(begin)
			if stopMontage != nil {
				stopMontage()
			}
			fmt.Printf("  %-24s threads=%-3d throughput=%12.0f txn/s\n",
				be.name, th, float64(txns.Load())/elapsed.Seconds())
		}
	}
}

func fig10(sub string, threads []int) {
	// The paper reports Figure 10 at 40 threads; we use the largest
	// requested thread count.
	th := threads[len(threads)-1]
	for _, ratio := range harness.PaperRatios {
		switch sub {
		case "a":
			fmt.Printf("\n== Figure 10a (skiplist latency, DRAM) %s, %d threads ==\n", ratio, th)
			sweep(func() harness.System { return harness.NewOriginalSkip() }, []int{th}, ratio)
			sweep(func() harness.System { return harness.NewTxOffSkip() }, []int{th}, ratio)
			sweep(func() harness.System {
				return harness.NewMedleyKV("skip", 1, 0, medleyPooling(), medleyFastpaths(), medleyGroupcommit())
			}, []int{th}, ratio)
		case "b":
			fmt.Printf("\n== Figure 10b (latency, payloads on NVM, persistence off) %s, %d threads ==\n", ratio, th)
			sweep(func() harness.System {
				return harness.NewMontage(harness.MontageOpts{
					Skiplist: true, RegionWords: 1 << 26, PersistOff: true,
					StoreLatency: *nvmStore,
				})
			}, []int{th}, ratio)
		case "c":
			fmt.Printf("\n== Figure 10c (latency, txMontage fully persistent) %s, %d threads ==\n", ratio, th)
			sweep(func() harness.System {
				return harness.NewMontage(harness.MontageOpts{
					Skiplist: true, RegionWords: 1 << 26,
					WriteBackLatency: *nvmWB, FenceLatency: *nvmFence, StoreLatency: *nvmStore,
				})
			}, []int{th}, ratio)
		}
	}
}
