// Command medleyd serves the benchmark registry's transactional stores
// over HTTP: POST /v1/batch executes a multi-key transaction through the
// service pipeline (coalescing txpool, tick-batch execution, admission
// control), GET /metrics exports the stack's counters, GET /healthz
// reports liveness and role.
//
// With -cdc-shards > 0 (the default) the node carries a commit-ordered
// change feed: GET /v1/watch streams committed writes per shard and
// GET /v1/snapshot serves bootstrap state, so another medleyd can follow
// this one. With -follow the process starts as a follower of the leader
// at that URL: it replays the leader's feed through its own pipeline,
// rejects writes with 503 "not leader", serves bounded-staleness reads
// (409 once replay lag exceeds -max-lag or the feed has been silent
// past -max-silence), and promotes itself — manually via POST
// /v1/promote, or automatically after -promote-after consecutive failed
// leader round trips. See internal/service and internal/replica.
//
// Usage:
//
//	medleyd -listen :7654 -system medley-hash@8 -pool 4096 -tick 1ms
//	medleyd -listen :7655 -system medley-hash@8 -follow http://127.0.0.1:7654 -promote-after 5
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"medley/internal/harness"
	"medley/internal/service"
)

func main() {
	var (
		listen      = flag.String("listen", ":7654", "address to serve on")
		system      = flag.String("system", "medley-hash@8", "system spec from the benchmark registry (see -list)")
		list        = flag.Bool("list", false, "list registered systems and exit")
		buckets     = flag.Int("buckets", 1<<16, "hash buckets for hash-structured systems")
		keyRange    = flag.Uint64("keyrange", 1<<20, "key range hint (sizes simulated NVM regions)")
		pool        = flag.Int("pool", 4096, "txpool bound; arrivals beyond it are shed with 429")
		tick        = flag.Duration("tick", time.Millisecond, "batch tick period")
		batch       = flag.Int("batch", 0, "max requests drained per tick (0 = pool size)")
		workers     = flag.Int("workers", 0, "executor goroutines per tick (0 = GOMAXPROCS)")
		groupcommit = flag.Bool("groupcommit", true,
			"merge each worker chunk's requests into group commits (Medley systems; false commits each request individually)")
		dedup = flag.Int("dedup", 4096,
			"idempotency window: remembered outcomes for request-ID dedup (0 disables; retried IDs then re-execute)")
		cdcShards = flag.Int("cdc-shards", 4,
			"commit-ordered change feed streams for /v1/watch (0 disables the feed; the node is then not followable)")
		follow = flag.String("follow", "",
			"start as a follower replaying the leader at this base URL (requires -cdc-shards > 0)")
		maxLag = flag.Uint64("max-lag", 4096,
			"follower staleness bound: reads answer 409 while replay lag exceeds this many entries")
		maxSilence = flag.Duration("max-silence", time.Second,
			"follower staleness bound a partition cannot fool: reads answer 409 once the leader has been silent this long (negative disables)")
		promoteAfter = flag.Int("promote-after", 0,
			"auto-promote the follower to leader after this many consecutive failed leader round trips (0 = manual POST /v1/promote only)")
	)
	flag.Parse()

	if *list {
		for _, n := range harness.SystemNames() {
			fmt.Println(n)
		}
		return
	}
	if *follow != "" && *cdcShards <= 0 {
		log.Fatalf("medleyd: -follow requires -cdc-shards > 0 (the follower replays the leader's feed into its own)")
	}

	sys, err := harness.NewSystem(*system, harness.SystemOpts{
		Buckets:       *buckets,
		KeyRange:      *keyRange,
		NoGroupCommit: !*groupcommit,
	})
	if err != nil {
		log.Fatalf("medleyd: %v", err)
	}
	be, ok := sys.(service.Backend)
	if !ok {
		log.Fatalf("medleyd: system %q does not support batch execution (no NewExecutor)", *system)
	}

	svcCfg := service.Config{
		PoolSize:    *pool,
		Tick:        *tick,
		MaxBatch:    *batch,
		Workers:     *workers,
		DedupWindow: *dedup,
	}

	// -cdc-shards = 0: the standalone pipeline, exactly as before the
	// replication layer existed. Otherwise a Node: a leader with a
	// followable feed, or (with -follow) a follower of one.
	var (
		handler http.Handler
		svc     *service.Service
		role    = "standalone"
	)
	if *cdcShards > 0 {
		node, err := service.NewNode(service.NodeConfig{
			Backend:      be,
			Service:      svcCfg,
			FeedShards:   *cdcShards,
			Follow:       *follow,
			MaxLag:       *maxLag,
			MaxSilence:   *maxSilence,
			PromoteAfter: *promoteAfter,
		})
		if err != nil {
			log.Fatalf("medleyd: %v", err)
		}
		defer node.Close()
		handler, svc, role = node.Handler(), node.Service(), node.Role()
	} else {
		svc = service.New(be, svcCfg)
		defer svc.Close()
		handler = service.Handler(svc)
	}

	srv := &http.Server{
		Addr:        *listen,
		Handler:     handler,
		ReadTimeout: 30 * time.Second,
		// No write timeout: /v1/watch streams hold their response open for
		// the life of the follower. Batch responses are bounded by the
		// pipeline's own deadlines.
		WriteTimeout: 0,
	}

	// Serve until SIGINT/SIGTERM, then drain: in-flight transactions
	// finish, new ones get connection refused.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	cfg := svc.Config()
	log.Printf("medleyd: serving %s on %s as %s (pool=%d tick=%v batch=%d workers=%d cdc-shards=%d)",
		be.Name(), *listen, role, cfg.PoolSize, cfg.Tick, cfg.MaxBatch, cfg.Workers, *cdcShards)
	if *follow != "" {
		log.Printf("medleyd: following %s (max-lag=%d max-silence=%v promote-after=%d)",
			*follow, *maxLag, *maxSilence, *promoteAfter)
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("medleyd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("medleyd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("medleyd: shutdown: %v", err)
		}
	}
}
