// Command medleyd serves the benchmark registry's transactional stores
// over HTTP: POST /v1/batch executes a multi-key transaction through the
// service pipeline (coalescing txpool, tick-batch execution, admission
// control), GET /metrics exports the stack's counters, GET /healthz
// reports liveness. See internal/service.
//
// Usage:
//
//	medleyd -listen :7654 -system medley-hash@8 -pool 4096 -tick 1ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"medley/internal/harness"
	"medley/internal/service"
)

func main() {
	var (
		listen      = flag.String("listen", ":7654", "address to serve on")
		system      = flag.String("system", "medley-hash@8", "system spec from the benchmark registry (see -list)")
		list        = flag.Bool("list", false, "list registered systems and exit")
		buckets     = flag.Int("buckets", 1<<16, "hash buckets for hash-structured systems")
		keyRange    = flag.Uint64("keyrange", 1<<20, "key range hint (sizes simulated NVM regions)")
		pool        = flag.Int("pool", 4096, "txpool bound; arrivals beyond it are shed with 429")
		tick        = flag.Duration("tick", time.Millisecond, "batch tick period")
		batch       = flag.Int("batch", 0, "max requests drained per tick (0 = pool size)")
		workers     = flag.Int("workers", 0, "executor goroutines per tick (0 = GOMAXPROCS)")
		groupcommit = flag.Bool("groupcommit", true,
			"merge each worker chunk's requests into group commits (Medley systems; false commits each request individually)")
		dedup = flag.Int("dedup", 4096,
			"idempotency window: remembered outcomes for request-ID dedup (0 disables; retried IDs then re-execute)")
	)
	flag.Parse()

	if *list {
		for _, n := range harness.SystemNames() {
			fmt.Println(n)
		}
		return
	}

	sys, err := harness.NewSystem(*system, harness.SystemOpts{
		Buckets:       *buckets,
		KeyRange:      *keyRange,
		NoGroupCommit: !*groupcommit,
	})
	if err != nil {
		log.Fatalf("medleyd: %v", err)
	}
	be, ok := sys.(service.Backend)
	if !ok {
		log.Fatalf("medleyd: system %q does not support batch execution (no NewExecutor)", *system)
	}

	svc := service.New(be, service.Config{
		PoolSize:    *pool,
		Tick:        *tick,
		MaxBatch:    *batch,
		Workers:     *workers,
		DedupWindow: *dedup,
	})
	defer svc.Close()

	srv := &http.Server{
		Addr:         *listen,
		Handler:      service.Handler(svc),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: in-flight transactions
	// finish, new ones get connection refused.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	cfg := svc.Config()
	log.Printf("medleyd: serving %s on %s (pool=%d tick=%v batch=%d workers=%d)",
		be.Name(), *listen, cfg.PoolSize, cfg.Tick, cfg.MaxBatch, cfg.Workers)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("medleyd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("medleyd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("medleyd: shutdown: %v", err)
		}
	}
}
