package medley_test

import (
	"errors"
	"testing"

	"medley"
	"medley/internal/structures/mhash"
)

// TestFacadeTransfer exercises the public API end to end: the paper's
// Figure 3 transfer across two hash tables.
func TestFacadeTransfer(t *testing.T) {
	mgr := medley.NewTxManager()
	ht1 := medley.NewHashMap[int](mgr, 1024)
	ht2 := medley.NewHashMap[int](mgr, 1024)
	tx := mgr.Register()
	ht1.Put(nil, 1, 100)

	errInsufficient := errors.New("insufficient")
	transfer := func(v int, a1, a2 uint64) error {
		return tx.RunRetry(func() error {
			v1, ok := ht1.Get(tx, a1)
			if !ok || v1 < v {
				return errInsufficient
			}
			v2, _ := ht2.Get(tx, a2)
			ht1.Put(tx, a1, v1-v)
			ht2.Put(tx, a2, v+v2)
			return nil
		})
	}
	if err := transfer(40, 1, 2); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if v, _ := ht1.Get(nil, 1); v != 60 {
		t.Fatalf("ht1[1] = %d", v)
	}
	if v, _ := ht2.Get(nil, 2); v != 40 {
		t.Fatalf("ht2[2] = %d", v)
	}
	if err := transfer(1000, 1, 2); !errors.Is(err, errInsufficient) {
		t.Fatalf("overdraft = %v", err)
	}
}

// TestFacadeMixedStructures composes operations across four different
// structure types in one transaction.
func TestFacadeMixedStructures(t *testing.T) {
	mgr := medley.NewTxManager()
	skip := medley.NewSkiplist[string](mgr)
	bst := medley.NewBST[string](mgr)
	q := medley.NewQueue[uint64](mgr)
	rot := medley.NewRotatingSkiplist[string](mgr)
	tx := mgr.Register()

	err := tx.RunRetry(func() error {
		skip.Put(tx, 1, "skip")
		bst.Put(tx, 2, "bst")
		rot.Put(tx, 3, "rot")
		q.Enqueue(tx, 99)
		return nil
	})
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if v, ok := skip.Get(nil, 1); !ok || v != "skip" {
		t.Fatal("skiplist write lost")
	}
	if v, ok := bst.Get(nil, 2); !ok || v != "bst" {
		t.Fatal("bst write lost")
	}
	if v, ok := rot.Get(nil, 3); !ok || v != "rot" {
		t.Fatal("rotating write lost")
	}
	if v, ok := q.Dequeue(nil); !ok || v != 99 {
		t.Fatal("queue write lost")
	}
	// Aborted cross-structure transaction leaves no trace.
	_ = tx.Run(func() error {
		skip.Remove(tx, 1)
		q.Enqueue(tx, 1)
		tx.Abort()
		return nil
	})
	if _, ok := skip.Get(nil, 1); !ok {
		t.Fatal("aborted remove took effect")
	}
	if q.Len() != 0 {
		t.Fatal("aborted enqueue took effect")
	}
}

// TestFacadeDurable exercises txMontage through the facade: put, sync,
// crash, recover.
func TestFacadeDurable(t *testing.T) {
	sys := medley.NewMontage(medley.MontageConfig{RegionWords: 1 << 18})
	mgr := medley.NewTxManager()
	idx := mhash.NewMap[medley.PEntry[uint64]](mgr, 256)
	store := medley.NewPStore[uint64](sys, idx, medley.U64Codec())

	tx := mgr.Register()
	h := sys.Wrap(tx)
	if err := tx.RunRetry(func() error {
		store.Put(h, 7, 700)
		store.Put(h, 8, 800)
		return nil
	}); err != nil {
		t.Fatalf("durable put: %v", err)
	}
	sys.Sync()
	_ = tx.RunRetry(func() error { store.Put(h, 9, 900); return nil }) // unsynced

	rec := sys.CrashAndRecover()
	mgr2 := medley.NewTxManager()
	idx2 := mhash.NewMap[medley.PEntry[uint64]](mgr2, 256)
	store2 := medley.RebuildPStore(sys, idx2, medley.U64Codec(), rec)

	h2 := sys.Wrap(mgr2.Register())
	if v, ok := store2.Get(h2, 7); !ok || v != 700 {
		t.Fatalf("recovered store[7] = %d,%v", v, ok)
	}
	if v, ok := store2.Get(h2, 8); !ok || v != 800 {
		t.Fatalf("recovered store[8] = %d,%v", v, ok)
	}
	if _, ok := store2.Get(h2, 9); ok {
		t.Fatal("unsynced epoch survived the crash")
	}
}

// TestFacadeEBR wires epoch-based reclamation through a Tx: with pooling
// enabled, displaced link cells and unlinked hash nodes retire into the
// Tx's arenas through the EBR grace period (single goroutine, so no
// Enter/Exit bracketing is needed for safety).
func TestFacadeEBR(t *testing.T) {
	mgr := medley.NewTxManager()
	mgr.EnablePooling()
	m := medley.NewHashMap[int](mgr, 64)
	smr := medley.NewEBR(4)
	tx := mgr.Register()
	h := smr.Register()
	tx.SetSMR(h)
	for k := uint64(0); k < 50; k++ {
		key := k
		if err := tx.RunRetry(func() error {
			m.Put(tx, key, int(key))
			m.Remove(tx, key)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	h.Drain()
	if st := smr.Stats(); st.Retired == 0 || st.Reclaimed != st.Retired {
		t.Fatalf("EBR stats = %+v", st)
	}
}

func TestFacadeShardedMap(t *testing.T) {
	mgr := medley.NewTxManager()
	m, err := medley.NewShardedMap(mgr, "skip", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	tx := mgr.Register()
	const n = 512
	if err := tx.RunRetry(func() error {
		for k := uint64(0); k < n; k++ {
			m.Put(tx, k, k*3)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := m.Get(nil, k); !ok || v != k*3 {
			t.Fatalf("key %d = (%d,%v), want %d", k, v, ok, k*3)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	// Competitor structures cannot shard: the facade surfaces the error.
	if _, err := medley.NewShardedMap(mgr, "tdsl", 4, 0); err == nil {
		t.Fatal("sharded competitor structure did not error")
	}
}
